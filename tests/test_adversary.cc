/**
 * @file
 * Adversary-simulation suite tests: both polarities of the scorecard
 * (a hardened config must contain every applicable scenario, a loose
 * config must breach in at least two attack classes), the regression
 * pin that deny-edge attacks land on DeniedCrossing witnesses, the
 * EPT forged-doorbell rejection path, the scratch-register scrub
 * lifecycle, the controller decision trace, and a property-based
 * forged-crossing generator: 200 random (from, to, entry) tuples
 * against a deny-complete matrix, none of which may reach callee code.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "adversary/adversary.hh"
#include "apps/deploy.hh"
#include "core/image.hh"
#include "core/toolchain.hh"
#include "runtime/controller.hh"

namespace flexos {
namespace {

/** app / sys / net (all MPK), least-privilege boundaries: nothing may
 *  call into app, net -> sys crossings are entry-validated, and every
 *  boundary keeps the default DSS + scrubbed returns. */
const char *hardenedCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- lwip: net
boundaries:
- net -> app: {deny: true}
- sys -> app: {deny: true}
- net -> sys: {validate: true}
)";

/** Same topology with the matrix thrown open: no deny edges, and the
 *  net -> sys boundary runs the light gate with scrubbing off over a
 *  fully shared stack — each a containment hole the scorecard must
 *  convert into a breach. */
const char *looseCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- lwip: net
boundaries:
- net -> sys: {gate: light, scrub: false, stack_sharing: shared-stack}
)";

/** MPK attacker aiming at a vm-ept compartment: the forged-doorbell
 *  class has a ring to attack. */
const char *eptTargetCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: vm-ept
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- lwip: net
boundaries:
- net -> app: {deny: true}
- sys -> app: {deny: true}
)";

/** Three compartments with no configured static call edges between
 *  them (uktime and vfscore call nothing configured here), so every
 *  cross edge can be denied — a deny-complete matrix. (`deny:` is
 *  exclusive by design: a denied edge has no gate flavour to tune, so
 *  the property quantifies over targets and entry symbols instead.) */
const char *denyCompleteCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- fs:
    mechanism: intel-mpk
- tm:
    mechanism: intel-mpk
libraries:
- libredis: app
- vfscore: fs
- uktime: tm
boundaries:
- app -> fs: {deny: true}
- fs -> app: {deny: true}
- app -> tm: {deny: true}
- tm -> app: {deny: true}
- fs -> tm: {deny: true}
- tm -> fs: {deny: true}
)";

DeployOptions
quietOpts()
{
    DeployOptions o;
    o.withNet = false;
    o.withFs = false;
    o.heapBytes = 1 << 20;
    o.sharedHeapBytes = 1 << 20;
    return o;
}

adversary::AttackOptions
netAttacker()
{
    adversary::AttackOptions a;
    a.attackerLib = "lwip";
    return a;
}

TEST(Adversary, HardenedConfigContainsEverything)
{
    Deployment dep(hardenedCfg, quietOpts());
    adversary::AttackScorecard card =
        adversary::runScorecard(dep, netAttacker());
    ASSERT_FALSE(card.results.empty());
    EXPECT_EQ(card.breached(), 0u) << card.summary();
    EXPECT_EQ(card.partial(), 0u) << card.summary();
    EXPECT_TRUE(card.fullContainment());
    EXPECT_EQ(card.score(), 0);
    EXPECT_EQ(card.bitsLeaked(), 0u);
    EXPECT_EQ(card.entropyDefeated(), 0u);
}

TEST(Adversary, DenyEdgeAttacksPinnedToDeniedWitness)
{
    // Regression pin: an attack across a `deny:` edge must be
    // witnessed by the per-edge gate.denied counter — the same signal
    // the runtime controller's deny-witness rule alerts on.
    Deployment dep(hardenedCfg, quietOpts());
    adversary::AttackScorecard card =
        adversary::runScorecard(dep, netAttacker());
    bool sawRopCross = false;
    for (const adversary::AttackResult &r : card.results) {
        if (r.scenario != "rop-cross:net->app")
            continue;
        sawRopCross = true;
        EXPECT_EQ(r.outcome, adversary::Outcome::Contained);
        EXPECT_EQ(r.witness, "gate.denied.net->app");
    }
    EXPECT_TRUE(sawRopCross);
    EXPECT_GT(dep.machine().counter("gate.denied.net->app"), 0u);
    EXPECT_GT(dep.machine().counter("gate.denied"), 0u);
}

TEST(Adversary, LooseConfigBreachesAtLeastTwoClasses)
{
    Deployment dep(looseCfg, quietOpts());
    adversary::AttackScorecard card =
        adversary::runScorecard(dep, netAttacker());
    EXPECT_FALSE(card.fullContainment()) << card.summary();
    std::set<adversary::AttackClass> breachedClasses;
    for (const adversary::AttackResult &r : card.results)
        if (r.outcome == adversary::Outcome::Breached)
            breachedClasses.insert(r.cls);
    EXPECT_GE(breachedClasses.size(), 2u) << card.summary();
    EXPECT_GE(card.score(), 20);
    // The unscrubbed light gate leaks register contents, and the
    // shared stack gives the planted secret away — both carry the
    // compartment's full ASLR budget with them.
    EXPECT_GT(card.bitsLeaked(), 0u);
    EXPECT_GT(card.entropyDefeated(), 0u);
}

TEST(Adversary, InfoLeakAccountsEntropyAgainstLayoutSlide)
{
    Deployment dep(looseCfg, quietOpts());
    adversary::AttackScorecard card = adversary::runAttackClass(
        dep, adversary::AttackClass::InfoLeak, netAttacker());
    bool sawStackScan = false;
    for (const adversary::AttackResult &r : card.results) {
        if (r.scenario != "stack-scan:sys")
            continue;
        sawStackScan = true;
        EXPECT_EQ(r.outcome, adversary::Outcome::Breached);
        EXPECT_GE(r.bitsLeaked, 64u);
        // intel-mpk compartments randomize within one address space:
        // 12 bits of section-slide entropy, all defeated by one leak.
        EXPECT_EQ(r.entropyDefeated,
                  layoutEntropyBits(Mechanism::IntelMpk));
    }
    EXPECT_TRUE(sawStackScan);
}

TEST(Adversary, ForgedDoorbellRejectedByEptServer)
{
    Deployment dep(eptTargetCfg, quietOpts());
    adversary::AttackScorecard card = adversary::runAttackClass(
        dep, adversary::AttackClass::ForgedDoorbell, netAttacker());
    ASSERT_FALSE(card.results.empty());
    EXPECT_EQ(card.breached(), 0u) << card.summary();
    bool sawGadget = false, sawSpurious = false;
    for (const adversary::AttackResult &r : card.results) {
        if (r.scenario == "doorbell-gadget:sys") {
            sawGadget = true;
            EXPECT_EQ(r.outcome, adversary::Outcome::Contained);
            EXPECT_EQ(r.witness, "gate.ept.forgedRejected");
        }
        if (r.scenario == "doorbell-spurious:sys") {
            sawSpurious = true;
            EXPECT_EQ(r.outcome, adversary::Outcome::Contained);
            EXPECT_EQ(r.witness, "gate.ept.spuriousDoorbells");
        }
    }
    EXPECT_TRUE(sawGadget);
    EXPECT_TRUE(sawSpurious);
    EXPECT_GT(dep.machine().counter("gate.ept.forgedRejected"), 0u);
    EXPECT_GT(dep.machine().counter("gate.ept.spuriousDoorbells"), 0u);
}

TEST(Adversary, ScratchRegistersBankPerCoreAndScrub)
{
    Machine m(TimingModel{}, 2);
    m.scratch[0] = 0x1111;
    m.scratch[7] = 0x7777;
    m.setActiveCore(1);
    // Core 1 sees its own (clean) bank, not core 0's values.
    EXPECT_EQ(m.scratch[0], 0u);
    m.scratch[0] = 0x2222;
    m.setActiveCore(0);
    EXPECT_EQ(m.scratch[0], 0x1111u);
    EXPECT_EQ(m.scratch[7], 0x7777u);
    m.scrubScratch();
    EXPECT_EQ(m.scratch[0], 0u);
    EXPECT_EQ(m.scratch[7], 0u);
    m.setActiveCore(1);
    EXPECT_EQ(m.scratch[0], 0x2222u);
}

TEST(Adversary, DssGateScrubsScratchAcrossCrossingLightDoesNot)
{
    // The mechanism-level polarity behind the reg-probe scenario: a
    // DSS crossing scrubs the scratch file on entry and return, the
    // ERIM-style light gate touches nothing.
    const char *cfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- sys -> app: {deny: true}
)";
    const char *lightCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- sys -> app: {deny: true}
- app -> sys: {gate: light, scrub: false}
)";
    for (bool light : {false, true}) {
        Deployment dep(light ? lightCfg : cfg, quietOpts());
        Image &img = dep.image();
        Machine &m = dep.machine();
        std::uint64_t seen = ~0ull;
        bool done = false;
        img.spawnIn("libredis", "driver", [&] {
            img.gate("uksched", "yield",
                     [&] { m.scratch[3] = 0xfeedbeef; });
            seen = m.scratch[3];
            done = true;
        });
        dep.scheduler().runUntil([&] { return done; });
        ASSERT_TRUE(done);
        if (light)
            EXPECT_EQ(seen, 0xfeedbeefull); // leaks across the return
        else
            EXPECT_EQ(seen, 0u); // return-side scrub wiped it
    }
}

TEST(Adversary, ControllerTraceRecordsDecisions)
{
    const char *cfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- att:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- uktime: att
boundaries:
- att -> sys: {adaptive: true}
- att -> app: {deny: true}
)";
    Deployment dep(cfg, quietOpts());
    Image &img = dep.image();
    ControllerConfig ccfg;
    ccfg.stormThreshold = 10;
    ccfg.denyAlert = 1;
    PolicyController ctl(img, ccfg);

    // Storm the adaptive edge past the threshold, and probe the
    // denied edge once: one epoch must record both a tighten and a
    // deny-harden decision (plus the swap that applied them).
    bool done = false;
    img.spawnIn("uktime", "storm", [&] {
        for (int i = 0; i < 30; ++i)
            img.gate("uksched", "yield", [] {});
        try {
            img.gate("libredis", "redis_main", [] {});
        } catch (const DeniedCrossing &) {
        }
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_TRUE(ctl.step());

    std::set<std::string> rules;
    for (const PolicyController::TraceEntry &e : ctl.trace()) {
        rules.insert(e.rule);
        EXPECT_EQ(e.epoch, 1u);
    }
    EXPECT_TRUE(rules.count("tighten"));
    EXPECT_TRUE(rules.count("deny-harden"));
    EXPECT_TRUE(rules.count("swap"));
    EXPECT_EQ(dep.machine().counter("controller.trace"),
              ctl.trace().size());
    EXPECT_LE(ctl.trace().size(), PolicyController::traceCapacity);

    bool sawEdge = false;
    for (const PolicyController::TraceEntry &e : ctl.trace())
        if (e.rule == "tighten" && e.edge == "att->sys" && e.level == 1)
            sawEdge = true;
    EXPECT_TRUE(sawEdge);
}

TEST(Adversary, PropertyForgedCrossingsNeverExecuteOnDenyComplete)
{
    // Property: on a deny-complete matrix, NO forged crossing — any
    // (from, to) pair, legal entry point or gadget, any gate flavour —
    // may reach callee code. 200 seeded-random tuples.
    Deployment dep(denyCompleteCfg, quietOpts());
    Image &img = dep.image();
    Machine &m = dep.machine();

    const char *libs[3] = {"libredis", "vfscore", "uktime"};
    adversary::Rng rng(0xf00dULL);
    std::uint64_t deniedBefore = m.counter("gate.denied");
    int executed = 0;
    int denied = 0;
    for (int i = 0; i < 200; ++i) {
        int from = static_cast<int>(rng.below(3));
        int to = static_cast<int>(rng.below(2));
        if (to >= from)
            ++to; // uniform over the 6 directed pairs
        const std::string callee = libs[to];
        // Half the probes aim at a legal entry point (deny must stop
        // them anyway), half at a fabricated gadget symbol.
        std::string fn;
        if (rng.below(2) == 0)
            fn = *img.registry().get(callee).entryPoints.begin();
        else
            fn = "gadget_" + std::to_string(rng.next() & 0xffff);
        bool done = false;
        img.spawnIn(libs[from], "forge-" + std::to_string(i), [&] {
            try {
                img.gate(callee, fn.c_str(), [&] { ++executed; });
            } catch (const DeniedCrossing &) {
                ++denied;
            }
            done = true;
        });
        dep.scheduler().runUntil([&] { return done; });
        ASSERT_TRUE(done) << "tuple " << i << " wedged";
    }
    EXPECT_EQ(executed, 0);
    EXPECT_EQ(denied, 200);
    EXPECT_EQ(m.counter("gate.denied") - deniedBefore, 200u);
}

TEST(Adversary, ResourceAttacksContainedByNetstackBounds)
{
    DeployOptions opts;
    opts.withNet = true;
    opts.withFs = false;
    Deployment dep(hardenedCfg, opts);
    dep.start();
    adversary::AttackOptions aopts = netAttacker();
    aopts.withNet = true;
    adversary::AttackScorecard card = adversary::runAttackClass(
        dep, adversary::AttackClass::Resource, aopts);
    dep.stop();
    ASSERT_FALSE(card.results.empty());
    EXPECT_EQ(card.breached(), 0u) << card.summary();
    bool sawFlood = false;
    for (const adversary::AttackResult &r : card.results)
        if (r.scenario == "syn-flood") {
            sawFlood = true;
            EXPECT_NE(r.outcome, adversary::Outcome::Breached);
        }
    EXPECT_TRUE(sawFlood);
}

TEST(Adversary, ScorecardNamesRoundTrip)
{
    for (adversary::AttackClass c : adversary::allAttackClasses()) {
        adversary::AttackClass back;
        ASSERT_TRUE(
            adversary::parseAttackClass(adversary::attackClassName(c),
                                        back));
        EXPECT_EQ(back, c);
    }
    adversary::AttackClass out;
    EXPECT_FALSE(adversary::parseAttackClass("bogus", out));
}

} // namespace
} // namespace flexos
