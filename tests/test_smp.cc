/**
 * @file
 * SMP machine-model tests: work-stealing balance across per-core run
 * queues, per-core PKRU register files, cross-core crossing and IPI
 * charges, RSS steering determinism, the `cores: 1` timing-equivalence
 * regression, elastic EPT server retirement, weighted token buckets
 * with per-caller throttle accounting, and the return-leg validation
 * charge.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/deploy.hh"
#include "apps/iperf.hh"
#include "core/image.hh"
#include "core/toolchain.hh"
#include "net/tcp.hh"
#include "uksched/scheduler.hh"

namespace flexos {
namespace {

struct SmpFixture : ::testing::Test
{
    SmpFixture()
        : mach(TimingModel{}, 4), scope(mach), sched(mach),
          reg(LibraryRegistry::standard()), tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

const char *twoMpkConfig = R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
libraries:
- libredis: a
- lwip: b
)";

// ------------------------------------------------------ work stealing

TEST_F(SmpFixture, WorkStealingBalancesUnpinnedLoad)
{
    // Eight unpinned threads all spawned on core 0 of a 4-core
    // machine: idle cores must steal, and every core ends up charged.
    for (int i = 0; i < 8; ++i) {
        sched.spawnOn(0, "w" + std::to_string(i),
                      [&] {
                          for (int k = 0; k < 50; ++k) {
                              mach.consume(1000);
                              sched.yield();
                          }
                      },
                      256 * 1024, /*pinned=*/false);
    }
    EXPECT_TRUE(sched.run());
    EXPECT_GE(mach.counter("sched.steals"), 3u);
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(mach.coreCycles(c), 0u) << "core " << c << " idle";
}

TEST_F(SmpFixture, PinnedThreadsAreNeverStolen)
{
    for (int i = 0; i < 8; ++i) {
        sched.spawnOn(0, "p" + std::to_string(i), [&] {
            for (int k = 0; k < 10; ++k) {
                mach.consume(100);
                sched.yield();
            }
        }); // pinned by default
    }
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(mach.counter("sched.steals"), 0u);
    EXPECT_EQ(mach.coreCycles(1), 0u);
    EXPECT_EQ(mach.coreCycles(2), 0u);
    EXPECT_EQ(mach.coreCycles(3), 0u);
}

// --------------------------------------------- per-core register files

TEST_F(SmpFixture, PerCorePkruIsolatedAcrossCores)
{
    auto img = buildFrom(twoMpkConfig);
    Pkru domA = img->compartmentAt(0).domain;
    Pkru domB = img->compartmentAt(1).domain;
    ASSERT_NE(domA.value(), domB.value());

    // Two compartmented threads on different cores, interleaving at
    // yields: each must observe exactly its own compartment's PKRU in
    // the machine's (per-core) register window, every time it runs.
    std::vector<std::uint32_t> seenA, seenB;
    Thread *ta = img->spawnIn("libredis", "ta", [&] {
        for (int i = 0; i < 6; ++i) {
            seenA.push_back(mach.pkru.value());
            sched.yield();
        }
    });
    Thread *tb = img->spawnIn("lwip", "tb", [&] {
        for (int i = 0; i < 6; ++i) {
            seenB.push_back(mach.pkru.value());
            sched.yield();
        }
    });
    sched.pin(ta, 0);
    sched.pin(tb, 1);
    EXPECT_TRUE(sched.run());
    ASSERT_EQ(seenA.size(), 6u);
    ASSERT_EQ(seenB.size(), 6u);
    for (std::uint32_t v : seenA)
        EXPECT_EQ(v, domA.value());
    for (std::uint32_t v : seenB)
        EXPECT_EQ(v, domB.value());
    img->shutdown();
}

// -------------------------------------------------- cross-core charges

TEST_F(SmpFixture, CrossCoreCrossingChargesMigration)
{
    auto img = buildFrom(twoMpkConfig);
    bool done0 = false, done1 = false;
    Thread *t0 = img->spawnIn("libredis", "c0", [&] {
        img->gate("lwip", "recv", [] {});
        done0 = true;
    });
    sched.pin(t0, 0);
    sched.runUntil([&] { return done0; });
    ASSERT_TRUE(done0);
    // First crossing into b: no previous core, no migration charge.
    EXPECT_EQ(mach.counter("gate.crossCore"), 0u);

    Thread *t1 = img->spawnIn("libredis", "c1", [&] {
        img->gate("lwip", "recv", [] {});
        img->gate("lwip", "recv", [] {});
        done1 = true;
    });
    sched.pin(t1, 1);
    sched.runUntil([&] { return done1; });
    ASSERT_TRUE(done1);
    // b's gate state last ran on core 0; entering from core 1 pays the
    // migration charge once, then the state is core-1-hot.
    EXPECT_EQ(mach.counter("gate.crossCore"), 1u);
    img->shutdown();
}

TEST_F(SmpFixture, CrossCoreWakeChargesIpi)
{
    WaitQueue q(sched);
    bool woken = false;
    Thread *sleeper = sched.spawnOn(0, "sleeper", [&] {
        q.wait();
        woken = true;
    });
    (void)sleeper;
    sched.spawnOn(1, "waker", [&] {
        mach.consume(500); // be strictly ahead of core 0
        q.wakeOne();
    });
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(woken);
    EXPECT_EQ(mach.counter("sched.ipis"), 1u);
}

TEST_F(SmpFixture, SameCoreWakeChargesNoIpi)
{
    WaitQueue q(sched);
    sched.spawnOn(2, "sleeper", [&] { q.wait(); });
    sched.spawnOn(2, "waker", [&] { q.wakeOne(); });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(mach.counter("sched.ipis"), 0u);
}

// ------------------------------------------------------- RSS steering

TEST(RssSteering, HashIsDeterministic)
{
    std::uint32_t a =
        NetStack::rssHash(0x0a000002u, 49152, 0x0a000001u, 5001);
    std::uint32_t b =
        NetStack::rssHash(0x0a000002u, 49152, 0x0a000001u, 5001);
    EXPECT_EQ(a, b);
    // Different tuple, different hash (with these constants).
    EXPECT_NE(a, NetStack::rssHash(0x0a000002u, 49153, 0x0a000001u,
                                   5001));
}

TEST(RssSteering, ConsecutivePortsRotateThroughQueues)
{
    // Clients connect from consecutive ephemeral ports; the odd
    // per-field multipliers make the hash step by an odd constant per
    // port, so any power-of-two queue count is covered evenly: 8
    // consecutive ports over 4 queues means exactly 2 per queue.
    std::vector<int> load(4, 0);
    for (std::uint16_t p = 49152; p < 49160; ++p)
        ++load[NetStack::rssHash(0x0a000002u, p, 0x0a000001u, 5001) %
               4];
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(load[q], 2) << "queue " << q;
}

TEST(RssSteering, MultiCoreDeploymentSteersAndScales)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libiperf: all
- newlib: all
- uksched: all
- lwip: all
cores: 4
)");
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    EXPECT_EQ(dep.machine().coreCount(), 4u);
    dep.start();
    EXPECT_EQ(dep.clientStack().rxQueueCount(), 1u);
    IperfResult res = runIperfMulti(dep.image(), dep.libc(),
                                    dep.clientStack(), 32 * 1024, 4096,
                                    /*flows=*/8);
    dep.stop();
    EXPECT_EQ(res.bytes, 8u * 32 * 1024);
    Machine &m = dep.machine();
    // RSS moved frames off queue 0 and more than one core did TCP work.
    EXPECT_GT(m.counter("nic.steered"), 0u);
    int coresCharged = 0;
    for (int c = 0; c < 4; ++c)
        if (m.coreCycles(c) > 0)
            ++coresCharged;
    EXPECT_GE(coresCharged, 2);
}

// -------------------------------------- cores: 1 timing equivalence

TEST(SingleCoreRegression, ExplicitCores1MatchesDefault)
{
    // `cores: 1` must be the exact single-core model: bit-identical
    // virtual time and counters to a config that never mentions cores.
    const char *base = R"(
compartments:
- all:
    mechanism: intel-mpk
    default: True
libraries:
- libiperf: all
- newlib: all
- uksched: all
- lwip: all
)";
    auto run = [&](const std::string &text) {
        SafetyConfig cfg = SafetyConfig::parse(text);
        DeployOptions opts;
        opts.withFs = false;
        Deployment dep(cfg, opts);
        dep.start();
        runIperfMulti(dep.image(), dep.libc(), dep.clientStack(),
                      64 * 1024, 4096, /*flows=*/2);
        dep.stop();
        return std::make_pair(dep.machine().wallCycles(),
                              dep.machine().counters());
    };
    auto [cyclesDefault, countersDefault] = run(base);
    auto [cyclesExplicit, countersExplicit] =
        run(std::string(base) + "cores: 1\n");
    EXPECT_EQ(cyclesDefault, cyclesExplicit);
    EXPECT_EQ(countersDefault, countersExplicit);
    // And no SMP artifacts exist on one core.
    EXPECT_EQ(countersDefault.count("sched.steals"), 0u);
    EXPECT_EQ(countersDefault.count("sched.ipis"), 0u);
    EXPECT_EQ(countersDefault.count("nic.steered"), 0u);
    EXPECT_EQ(countersDefault.count("gate.crossCore"), 0u);
}

// ------------------------------------------------ elastic EPT servers

TEST_F(SmpFixture, ElasticEptServerRetiresAfterIdleGrace)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: vm-ept
    servers: 1
libraries:
- libredis: app
- lwip: net
)");
    // Two concurrent RPCs against a base pool of one: the second
    // arrival finds every server busy and grows the shard; once the
    // boundary drains, the elastic server sees out its idle grace and
    // retires, shrinking the pool back to base.
    int inFlight = 0;
    bool done = false;
    auto body = [&] {
        ++inFlight;
        sched.sleepNs(100'000); // keep the server busy
        --inFlight;
    };
    Thread *t1 =
        img->spawnIn("libredis", "r1",
                     [&] { img->gate("lwip", "recv", body); });
    (void)t1;
    img->spawnIn("libredis", "r2", [&] {
        img->gate("lwip", "recv", body);
        // Outlive the elastic server's retire deadline so virtual
        // time provably passes it while the boundary is idle.
        sched.sleepNs(5'000'000);
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(inFlight, 0);
    EXPECT_GE(mach.counter("gate.ept.elasticSpawns"), 1u);
    EXPECT_GE(mach.counter("gate.ept.elasticRetires"), 1u);
    img->shutdown();
}

// ------------------------------------- weighted buckets + return legs

TEST_F(SmpFixture, WeightMultipliesTokenBudgetAndCountsPerCaller)
{
    auto img = buildFrom(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
libraries:
- libredis: a
- lwip: b
boundaries:
- a -> b: {rate: 4, weight: 2, window: 10000000, overflow: fail}
)");
    // rate 4 x weight 2 = 8 tokens before the bucket runs dry (the
    // window is far too long to refill meaningfully mid-burst).
    unsigned ok = 0;
    bool throttled = false;
    bool done = false;
    img->spawnIn("libredis", "burst", [&] {
        try {
            for (int i = 0; i < 9; ++i) {
                img->gate("lwip", "recv", [] {});
                ++ok;
            }
        } catch (const ThrottledCrossing &) {
            throttled = true;
        }
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(ok, 8u);
    EXPECT_TRUE(throttled);
    EXPECT_EQ(mach.counter("gate.throttled"), 1u);
    EXPECT_EQ(mach.counter("gate.throttled.a"), 1u);
    img->shutdown();
}

TEST_F(SmpFixture, ValidateReturnChargesTheReturnLeg)
{
    auto img = buildFrom(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
- uksched: b
- lwip: c
boundaries:
- a -> b: {validate_return: true}
)");
    // b and c are identical MPK compartments; the only policy delta is
    // the audited return into a, so the crossings' costs differ by
    // exactly one return-site validation.
    Cycles withValidate = 0, without = 0;
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        Cycles t0 = mach.cycles();
        img->gate("uksched", "yield", [] {});
        withValidate = mach.cycles() - t0;
        t0 = mach.cycles();
        img->gate("lwip", "recv", [] {});
        without = mach.cycles() - t0;
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(mach.counter("gate.validate.return"), 1u);
    EXPECT_EQ(withValidate, without + mach.timing.entryValidate);
    img->shutdown();
}

// ------------------------------- batch flush on migration / stealing

TEST_F(SmpFixture, PendingBatchFlushesBeforeSuspensionAndStealing)
{
    // Regression: a thread holding deferred vectored calls must flush
    // them at its next suspension point, BEFORE it can be stolen to
    // another core — otherwise the batch would execute on the stealing
    // core and charge the doorbell (and any crossCoreMigration) there.
    auto img = buildFrom(std::string(twoMpkConfig) + R"(boundaries:
- a -> b: {batch: 4}
)");
    int executed = 0;
    std::vector<int> bodyCores;
    int queueCore = -1;
    bool flushedAtYield = false;
    bool done = false;
    img->spawnIn("libredis", "batcher", [&] {
        queueCore = mach.activeCore();
        // Load the queuing core so the (unpinned) batcher has a
        // reason to be stolen once it suspends.
        sched.spawnOn(queueCore, "hog", [&] {
            for (int i = 0; i < 30; ++i) {
                mach.consume(3000);
                sched.yield();
            }
        });
        auto body = [&] {
            ++executed;
            bodyCores.push_back(mach.activeCore());
        };
        img->gateDeferred("lwip", "recv", body);
        img->gateDeferred("lwip", "recv", body);
        // batch: 4 not reached — both calls are still queued.
        EXPECT_EQ(executed, 0);
        sched.yield(); // suspension point: the pre-suspend hook fires
        flushedAtYield = executed == 2;
        for (int i = 0; i < 5; ++i)
            sched.yield();
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_TRUE(flushedAtYield);
    ASSERT_EQ(executed, 2);
    // One vectored crossing of two logical calls, executed on the core
    // that queued them: suspension flushes first, and stealing only
    // ever moves suspended threads, so a pending batch can never cross
    // cores.
    EXPECT_EQ(mach.counter("gate.batched"), 1u);
    EXPECT_EQ(mach.counter("gate.batchedCalls"), 2u);
    for (int c : bodyCores)
        EXPECT_EQ(c, queueCore);
    // The batcher itself did get moved around afterwards — the flush
    // happened under real stealing pressure, not on a quiet machine.
    EXPECT_GE(mach.counter("sched.steals"), 1u);
    img->shutdown();
}

} // namespace
} // namespace flexos
