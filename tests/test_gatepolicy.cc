/**
 * @file
 * Gate-policy matrix tests: `boundaries:` parse/toText round-trip,
 * wildcard precedence, validation of rules naming unknown
 * compartments, per-(from, to) policy counters under a mixed
 * light/dss image, asymmetric return policies, the per-compartment
 * EPT server pool (`servers:` + elastic growth + ringDepth), key
 * virtualization (EPT compartments unmapped instead of key-tagged),
 * and the least-privilege rules: `deny` (static rejection + dynamic
 * DeniedCrossing), `rate`/`window`/`overflow` token buckets
 * (stall/fail, throttle storms), per-boundary `stack_sharing`, and
 * the equal-specificity conflict errors.
 */

#include <gtest/gtest.h>

#include "apps/deploy.hh"
#include "core/dss.hh"
#include "core/image.hh"
#include "core/toolchain.hh"

namespace flexos {
namespace {

struct GatePolicyFixture : ::testing::Test
{
    GatePolicyFixture()
        : scope(mach), sched(mach), reg(LibraryRegistry::standard()),
          tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

// --------------------------------------------------- config surface

TEST_F(GatePolicyFixture, BoundariesParseAndRoundTripThroughToText)
{
    const char *text = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: vm-ept
    servers: 5
libraries:
- libredis: app
- uksched: sys
- lwip: net
boundaries:
- app -> sys: {gate: light}
- '*' -> net: {gate: dss, validate: true}
- net -> '*': {scrub: false}
)";
    SafetyConfig cfg = SafetyConfig::parse(text);
    ASSERT_EQ(cfg.boundaries.size(), 3u);
    EXPECT_EQ(cfg.boundaries[0].from, "app");
    EXPECT_EQ(cfg.boundaries[0].to, "sys");
    EXPECT_EQ(cfg.boundaries[0].flavor, MpkGateFlavor::Light);
    EXPECT_FALSE(cfg.boundaries[0].validate.has_value());
    EXPECT_EQ(cfg.boundaries[1].from, "*");
    EXPECT_EQ(cfg.boundaries[1].validate, true);
    EXPECT_EQ(cfg.boundaries[2].scrub, false);
    EXPECT_EQ(cfg.compartment("net").servers, 5);

    // toText() serializes the section back; reparsing reproduces the
    // exact rules and the same resolved matrix.
    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.boundaries, cfg.boundaries);
    EXPECT_EQ(again.compartment("net").servers, 5);
    GateMatrix m1 = GateMatrix::build(cfg);
    GateMatrix m2 = GateMatrix::build(again);
    for (int f = 0; f < 3; ++f)
        for (int t = 0; t < 3; ++t)
            EXPECT_EQ(m1.at(f, t), m2.at(f, t));
}

TEST_F(GatePolicyFixture, WildcardPrecedenceLayersBySpecificity)
{
    // Callee-side wildcards override caller-side ones (the historical
    // callee-decides rule), exact pairs override both, and unset
    // fields fall through to the less specific layer.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
boundaries:
- '*' -> '*': {validate: true}
- a -> '*': {gate: light}
- '*' -> b: {gate: dss}
- a -> b: {scrub: false}
)");
    GateMatrix m = GateMatrix::build(cfg);

    // a -> c: caller-side wildcard flavour, global validate.
    EXPECT_EQ(m.at(0, 2).flavor, MpkGateFlavor::Light);
    EXPECT_TRUE(m.at(0, 2).validateEntry);
    EXPECT_TRUE(m.at(0, 2).scrubReturn);
    // a -> b: callee-side dss beats caller-side light; the exact rule
    // adds scrub: false without disturbing either.
    EXPECT_EQ(m.at(0, 1).flavor, MpkGateFlavor::Dss);
    EXPECT_TRUE(m.at(0, 1).validateEntry);
    EXPECT_FALSE(m.at(0, 1).scrubReturn);
    // c -> b: callee-side rule only.
    EXPECT_EQ(m.at(2, 1).flavor, MpkGateFlavor::Dss);
    // c -> a: untouched by flavour rules -> default dss.
    EXPECT_EQ(m.at(2, 0).flavor, MpkGateFlavor::Dss);
    EXPECT_TRUE(m.at(2, 0).validateEntry);
    // Policy names carry the overrides.
    EXPECT_EQ(m.at(0, 1).name(),
              std::string("intel-mpk(dss)+validate-scrub"));
}

TEST_F(GatePolicyFixture, LegacyMpkGateKnobDesugarsToWildcardRule)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: intel-mpk
libraries:
- libredis: c1
- lwip: c2
mpk_gate: light
)");
    ASSERT_EQ(cfg.boundaries.size(), 1u);
    EXPECT_EQ(cfg.boundaries[0].from, "*");
    EXPECT_EQ(cfg.boundaries[0].to, "*");
    EXPECT_EQ(cfg.boundaries[0].flavor, MpkGateFlavor::Light);
    GateMatrix m = GateMatrix::build(cfg);
    EXPECT_EQ(m.at(0, 1).flavor, MpkGateFlavor::Light);
    EXPECT_EQ(m.at(1, 0).flavor, MpkGateFlavor::Light);
}

TEST_F(GatePolicyFixture, ValidateRejectsBoundariesNamingUnknowns)
{
    // lint-skip: intentionally invalid configuration.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: a
boundaries:
- a -> ghost: {gate: light}
)");
    EXPECT_THROW(tc.validate(cfg), FatalError);

    // lint-skip: servers on a non-EPT compartment is a user error.
    SafetyConfig cfg2 = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
    servers: 4
libraries:
- libredis: a
)");
    EXPECT_THROW(tc.validate(cfg2), FatalError);

    EXPECT_THROW(SafetyConfig::parse(R"(
# lint-skip: intentionally invalid (unknown flavour name)
compartments:
- a:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: a
boundaries:
- a -> a: {gate: sideways}
)"),
                 FatalError);
}

// -------------------------------------- least-privilege rule surface

TEST_F(GatePolicyFixture, NewKeysParseAndRoundTripThroughToText)
{
    const char *text = R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
- uksched: b
- lwip: c
boundaries:
- b -> a: {deny: true}
- a -> b: {rate: 100, window: 50000, overflow: fail}
- a -> c: {stack_sharing: shared-stack, rate: 7}
)";
    SafetyConfig cfg = SafetyConfig::parse(text);
    ASSERT_EQ(cfg.boundaries.size(), 3u);
    EXPECT_EQ(cfg.boundaries[0].deny, true);
    EXPECT_EQ(cfg.boundaries[1].rate, 100u);
    EXPECT_EQ(cfg.boundaries[1].window, 50000u);
    EXPECT_EQ(cfg.boundaries[1].overflow, RateOverflow::Fail);
    EXPECT_EQ(cfg.boundaries[2].stackSharing,
              StackSharing::SharedStack);
    EXPECT_EQ(cfg.boundaries[2].rate, 7u);

    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.boundaries, cfg.boundaries);
    GateMatrix m = GateMatrix::build(again);
    EXPECT_TRUE(m.at(1, 0).deny);
    EXPECT_EQ(m.at(0, 1).rate, 100u);
    EXPECT_EQ(m.at(0, 1).rateWindow, 50000u);
    EXPECT_EQ(m.at(0, 1).overflow, RateOverflow::Fail);
    EXPECT_EQ(m.at(0, 2).stackSharing, StackSharing::SharedStack);
    // Untouched cells keep the defaults.
    EXPECT_FALSE(m.at(2, 0).deny);
    EXPECT_EQ(m.at(2, 0).rate, 0u);
    EXPECT_EQ(m.at(2, 0).stackSharing, StackSharing::Dss);
}

TEST_F(GatePolicyFixture, ToTextPreservesRedundantRulesAndStackSharing)
{
    // Regression: rules whose policy equals the resolved default must
    // still round-trip — dropping "redundant" explicit rules loses
    // author intent.
    const char *text = R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
libraries:
- libredis: a
- lwip: b
boundaries:
- a -> b: {gate: dss, validate: false, scrub: true, deny: false}
)";
    SafetyConfig cfg = SafetyConfig::parse(text);
    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.boundaries, cfg.boundaries);
    ASSERT_EQ(again.boundaries.size(), 1u);
    EXPECT_EQ(again.boundaries[0].flavor, MpkGateFlavor::Dss);
    EXPECT_EQ(again.boundaries[0].validate, false);
    EXPECT_EQ(again.boundaries[0].scrub, true);
    EXPECT_EQ(again.boundaries[0].deny, false);

    // Regression: the image-wide stack_sharing used to vanish in
    // toText(), silently resetting reparsed configs to DSS. It now
    // desugars to a ('*','*') rule and survives the round trip.
    SafetyConfig heapCfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: a
stack_sharing: heap
)");
    EXPECT_EQ(heapCfg.stackSharing, StackSharing::Heap);
    SafetyConfig heapAgain = SafetyConfig::parse(heapCfg.toText());
    EXPECT_EQ(GateMatrix::build(heapAgain).at(0, 0).stackSharing,
              StackSharing::Heap);

    // Programmatic assignment (no rule) survives too.
    SafetyConfig prog = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: a
)");
    prog.stackSharing = StackSharing::SharedStack;
    SafetyConfig progAgain = SafetyConfig::parse(prog.toText());
    EXPECT_EQ(GateMatrix::build(progAgain).at(0, 0).stackSharing,
              StackSharing::SharedStack);
}

TEST_F(GatePolicyFixture, NewKeysLayerBySpecificity)
{
    // Wildcard layering with deny/rate/stack_sharing: a more specific
    // rule overrides a less specific one field by field, and
    // `deny: false` re-allows an edge a wildcard denied.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
boundaries:
- '*' -> b: {deny: true}
- a -> b: {deny: false}
- a -> '*': {rate: 10}
- '*' -> c: {rate: 99, stack_sharing: heap}
- a -> c: {stack_sharing: shared-stack}
)");
    GateMatrix m = GateMatrix::build(cfg);
    // c -> b: wildcard deny holds; a -> b: exact rule re-allows.
    EXPECT_TRUE(m.at(2, 1).deny);
    EXPECT_FALSE(m.at(0, 1).deny);
    // a -> c: callee-side rate(99) beats caller-side rate(10); the
    // exact stack_sharing overrides the callee-side heap.
    EXPECT_EQ(m.at(0, 2).rate, 99u);
    EXPECT_EQ(m.at(0, 2).stackSharing, StackSharing::SharedStack);
    // b -> c: callee-side only.
    EXPECT_EQ(m.at(1, 2).rate, 99u);
    EXPECT_EQ(m.at(1, 2).stackSharing, StackSharing::Heap);
    // a -> b kept the caller-side rate from a -> '*'.
    EXPECT_EQ(m.at(0, 1).rate, 10u);
}

TEST_F(GatePolicyFixture, EqualSpecificityConflictsAreErrorsNotPrecedence)
{
    auto build = [](const std::string &rules) {
        // lint-skip: fragments completed below.
        return GateMatrix::build(SafetyConfig::parse(
            std::string(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
libraries:
- libredis: a
boundaries:
)") + rules));
    };

    // Same field, same layer, different values: ambiguous.
    EXPECT_THROW(build("- a -> b: {gate: light}\n"
                       "- a -> b: {gate: dss}\n"),
                 FatalError);
    // deny vs. rate at equal specificity: no precedence, an error.
    EXPECT_THROW(build("- a -> b: {deny: true}\n"
                       "- a -> b: {rate: 5}\n"),
                 FatalError);
    EXPECT_THROW(build("- a -> b: {rate: 5}\n"
                       "- a -> b: {deny: true}\n"),
                 FatalError);
    // Wildcards of the same shape conflict the same way.
    EXPECT_THROW(build("- '*' -> b: {stack_sharing: heap}\n"
                       "- '*' -> b: {stack_sharing: dss}\n"),
                 FatalError);
    // Agreement at equal specificity is fine (no false positives)...
    EXPECT_EQ(build("- a -> b: {rate: 5}\n"
                    "- a -> b: {rate: 5, window: 70}\n")
                  .at(0, 1)
                  .rate,
              5u);
    // ...and different layers never conflict.
    EXPECT_TRUE(build("- '*' -> b: {rate: 5}\n"
                      "- a -> b: {deny: true}\n")
                    .at(0, 1)
                    .deny);

    // deny: true admits no other key in the same rule.
    EXPECT_THROW(build("- a -> b: {deny: true, rate: 5}\n"),
                 FatalError);
    EXPECT_THROW(build("- a -> b: {deny: true, gate: light}\n"),
                 FatalError);
    // rate: 0 is not a rate (use deny).
    EXPECT_THROW(build("- a -> b: {rate: 0}\n"), FatalError);
}

TEST_F(GatePolicyFixture, DeniedStaticEdgeRejectedAtImageBuild)
{
    // libredis's static call graph needs lwip; denying app -> net
    // contradicts it and must fail at build, not at first crossing.
    // lint-skip: intentionally contradictory configuration.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- lwip: net
boundaries:
- app -> net: {deny: true}
)");
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    EXPECT_THROW(tc.build(mach, sched, cfg), FatalError);
}

TEST_F(GatePolicyFixture, DynamicDeniedCrossingRaisesAndCounts)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- uktime: sys
boundaries:
- sys -> app: {deny: true}
)");
    bool denied = false, done = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("uksched", "yield", [&] {
            // No static edge sys -> app exists; the dynamic attempt
            // is refused at the gate.
            try {
                img->gate("libredis", "redis_handle_conn", [] {});
            } catch (const DeniedCrossing &e) {
                EXPECT_EQ(e.from, "sys");
                EXPECT_EQ(e.to, "app");
                denied = true;
            }
        });
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_TRUE(denied);
    EXPECT_EQ(mach.counter("gate.denied"), 1u);
    // Denied edges never reach the crossing ledger or the backend.
    EXPECT_EQ(img->gateCrossings().count({1, 0}), 0u);
    EXPECT_EQ(img->policyFor(1, 0).name(), "denied");
    img->shutdown();
}

TEST_F(GatePolicyFixture, RateLimitStallsAndAccountsThrottledCycles)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- app -> sys: {rate: 10, window: 1000000}
)");
    bool done = false;
    Cycles spent = 0;
    img->spawnIn("libredis", "t", [&] {
        Cycles before = mach.cycles();
        for (int i = 0; i < 30; ++i)
            img->gate("uksched", "yield", [] {});
        spent = mach.cycles() - before;
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    // The bucket starts full (10 tokens); the other 20 crossings each
    // stall ~window/rate = 100k vcycles for the next token.
    EXPECT_EQ(mach.counter("gate.throttled"), 20u);
    EXPECT_GE(mach.counter("machine.stallCycles"), 20u * 99'000);
    EXPECT_GE(spent, 20u * 99'000);
    // All 30 crossings executed (stall back-pressures, never drops).
    EXPECT_EQ(img->gateCrossings().at({0, 1}), 30u);
    img->shutdown();
}

TEST_F(GatePolicyFixture, RateLimitFailRaisesThrottledCrossing)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- app -> sys: {rate: 5, overflow: fail}
)");
    int ran = 0, failed = 0;
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        for (int i = 0; i < 8; ++i) {
            try {
                img->gate("uksched", "yield", [&] { ++ran; });
            } catch (const ThrottledCrossing &e) {
                EXPECT_EQ(e.from, "app");
                EXPECT_EQ(e.to, "sys");
                ++failed;
            }
        }
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    // 5 tokens, 8 attempts, negligible refill in between.
    EXPECT_EQ(ran, 5);
    EXPECT_EQ(failed, 3);
    EXPECT_EQ(mach.counter("gate.throttled"), 3u);
    EXPECT_EQ(mach.counter("machine.stallCycles"), 0u);
    img->shutdown();
}

TEST_F(GatePolicyFixture, HundredBoundaryThrottleStorm)
{
    // Ten single-library compartments, every ordered pair
    // rate-limited through one wildcard rule: a 100-bucket matrix
    // with ~90 distinct boundaries driven past their budget by
    // nested crossings (bucket indexing + stall accounting; CI runs
    // this under ASan too).
    const std::pair<const char *, const char *> libs[] = {
        {"libredis", "redis_handle_conn"},
        {"uksched", "yield"},
        {"uktime", "clock_gettime"},
        {"lwip", "poll"},
        {"vfscore", "open"},
        {"newlib", "memcpy"},
        {"libnginx", "nginx_main"},
        {"libsqlite", "sqlite_open"},
        {"libiperf", "iperf_server"},
        {"libopenjpg", "decode_image"},
    };
    constexpr int nLibs = 10;
    std::string text = "compartments:\n";
    for (int i = 0; i < nLibs; ++i) {
        text += "- c" + std::to_string(i) + ":\n";
        text += "    mechanism: intel-mpk\n";
        if (i == 0)
            text += "    default: True\n";
    }
    text += "libraries:\n";
    for (int i = 0; i < nLibs; ++i)
        text += std::string("- ") + libs[i].first + ": c" +
                std::to_string(i) + "\n";
    text += "boundaries:\n- '*' -> '*': {rate: 2, window: 100000}\n";
    SafetyConfig cfg = SafetyConfig::parse(text);
    cfg.heapBytes = 64 * 1024;
    cfg.sharedHeapBytes = 64 * 1024;
    auto img = tc.build(mach, sched, cfg);

    int finished = 0;
    for (int t = 0; t < 5; ++t) {
        img->spawnIn("libredis", "storm-" + std::to_string(t), [&] {
            // Visit every compartment and, from inside each, cross
            // into every other: all ~90 ordered boundaries, each
            // beaten past its 2-token budget by the 5 threads.
            for (int i = 0; i < nLibs; ++i) {
                img->gate(libs[i].first, libs[i].second, [&] {
                    for (int j = 0; j < nLibs; ++j) {
                        if (j == i)
                            continue;
                        img->gate(libs[j].first, libs[j].second,
                                  [] {});
                    }
                });
            }
            ++finished;
        });
    }
    sched.runUntil([&] { return finished == 5; });
    ASSERT_EQ(finished, 5);

    // Every ordered compartment pair carried traffic...
    EXPECT_EQ(img->gateCrossings().size(),
              static_cast<std::size_t>(nLibs * (nLibs - 1)));
    // ...and the wildcard budget throttled the storm (stalls refill
    // every bucket as the clock advances, so the exact count varies
    // with interleaving — but 5 threads against 2-token buckets must
    // overflow somewhere, and stalled time must be accounted).
    EXPECT_GT(mach.counter("gate.throttled"), 0u);
    EXPECT_GT(mach.counter("machine.stallCycles"), 0u);
    // Stall never drops a crossing: per-boundary totals are exact.
    EXPECT_EQ(img->gateCrossings().at({1, 0}), 5u);
    EXPECT_EQ(img->gateCrossings().at({0, 1}), 10u);
    img->shutdown();
}

TEST_F(GatePolicyFixture, PerBoundaryStackSharingGovernsFrames)
{
    // app -> sys shares the whole stack; app -> net keeps the DSS.
    // The sys edge runs the *light* gate: even flavours that share
    // the caller's stack must lay the callee's sim stack out under
    // the boundary's policy (regression: only the DSS path used to).
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- lwip: net
boundaries:
- app -> sys: {gate: light, stack_sharing: shared-stack}
)");
    bool done = false;
    int *sysVar = nullptr;
    img->spawnIn("libredis", "t", [&] {
        img->gate("uksched", "yield", [&] {
            DssFrame f(*img);
            sysVar = f.var<int>();
            // Shared stack: the variable itself is shared memory.
            EXPECT_EQ(f.shadow(sysVar), sysVar);
            img->store(sysVar, 41);
            // Readable from the caller's compartment: the whole
            // stack carries the shared key.
        });
        EXPECT_EQ(img->load(sysVar), 41);
        img->gate("lwip", "recv", [&] {
            DssFrame f(*img);
            int *x = f.var<int>();
            // DSS boundary: shadow lives stackBytes above.
            EXPECT_EQ(reinterpret_cast<char *>(f.shadow(x)),
                      reinterpret_cast<char *>(x) +
                          SimStack::stackBytes);
        });
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(img->policyFor(0, 1).stackSharing,
              StackSharing::SharedStack);
    EXPECT_EQ(img->policyFor(0, 2).stackSharing, StackSharing::Dss);
    img->shutdown();
}

// ----------------------------------------------- dispatch under load

/** Hot trusted boundary on light, attacker-facing one on dss. */
const char *mixedFlavorConfig = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- hot:
    mechanism: intel-mpk
- cold:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: hot
- lwip: cold
boundaries:
- app -> hot: {gate: light}
)";

TEST_F(GatePolicyFixture, TwoMpkFlavorsRunSimultaneously)
{
    auto img = buildFrom(mixedFlavorConfig);
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        for (int i = 0; i < 3; ++i)
            img->gate("uksched", "yield", [] {}); // app -> hot: light
        img->gate("lwip", "recv", [] {});         // app -> cold: dss
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);

    // Both flavours carried traffic in the same image — the global
    // knob could only ever produce one of these counters.
    EXPECT_EQ(mach.counter("gate.mpk.light"), 3u);
    EXPECT_EQ(mach.counter("gate.mpk.dss"), 1u);

    // The per-(from, to) ledger names each boundary's policy.
    auto stats = img->boundaryStats();
    ASSERT_TRUE(stats.count({0, 1}));
    ASSERT_TRUE(stats.count({0, 2}));
    EXPECT_EQ(stats.at({0, 1}).policy, "intel-mpk(light)");
    EXPECT_EQ(stats.at({0, 1}).count, 3u);
    EXPECT_EQ(stats.at({0, 2}).policy, "intel-mpk(dss)");
    EXPECT_EQ(stats.at({0, 2}).count, 1u);
    EXPECT_EQ(stats.at({0, 1}).from, "app");
    EXPECT_EQ(stats.at({0, 1}).to, "hot");

    // The linker script records the matrix.
    std::string ls = img->linkerScript();
    EXPECT_NE(ls.find("app -> hot : intel-mpk(light)"),
              std::string::npos);
    EXPECT_NE(ls.find("app -> cold : intel-mpk(dss)"),
              std::string::npos);
    img->shutdown();
}

TEST_F(GatePolicyFixture, PolicyValidateForcesEntryCheckOnMpkBoundary)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- app -> sys: {validate: true}
)");
    bool rejected = false, ran = false;
    img->spawnIn("libredis", "t", [&] {
        // MPK gates don't validate entry points on their own (no CFI
        // here); the policy forces the check.
        try {
            img->gate("uksched", "not_an_entry_point", [] {});
        } catch (const CfiViolation &) {
            rejected = true;
        }
        img->gate("uksched", "yield", [&] { ran = true; });
    });
    sched.runUntil([&] { return ran; });
    EXPECT_TRUE(rejected);
    EXPECT_TRUE(ran);
    EXPECT_GT(mach.counter("gate.validate"), 0u);
    img->shutdown();
}

TEST_F(GatePolicyFixture, AsymmetricReturnPolicyIsCheaper)
{
    auto cost = [&](const char *extra) {
        Machine m2;
        MachineScope s2(m2);
        Scheduler sched2(m2);
        Toolchain tc2(reg);
        SafetyConfig cfg = SafetyConfig::parse(
            std::string(R"(
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: intel-mpk
libraries:
- libredis: c1
- lwip: c2
)") + extra);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        auto img = tc2.build(m2, sched2, cfg);
        Cycles before = 0, after = 0;
        img->spawnIn("libredis", "t", [&] {
            // Warm up the sim stack so both runs charge identically.
            img->gate("lwip", "recv", [] {});
            before = m2.cycles();
            for (int i = 0; i < 100; ++i)
                img->gate("lwip", "recv", [] {});
            after = m2.cycles();
        });
        sched2.run();
        return after - before;
    };
    Cycles scrubbed = cost("");
    Cycles unscrubbed = cost("boundaries:\n- c1 -> c2: {scrub: false}\n");
    EXPECT_LT(unscrubbed, scrubbed);
    // Exactly the return-side register save/zero per crossing.
    EXPECT_EQ(scrubbed - unscrubbed,
              100 * mach.timing.registerSaveZero);
}

// --------------------------------------------------- EPT server pool

TEST_F(GatePolicyFixture, EptPoolGrowsElasticallyAndTracksRingDepth)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: vm-ept
    servers: 1
libraries:
- libredis: app
- lwip: net
)");
    WaitQueue never(sched);
    int inBody = 0;
    for (int i = 0; i < 3; ++i) {
        img->spawnIn("libredis", "caller-" + std::to_string(i), [&] {
            img->gate("lwip", "recv", [&] {
                ++inBody;
                never.wait();
            });
        });
    }
    EXPECT_FALSE(sched.run()); // all callers blocked in RPC bodies

    // The base pool of 1 grew to absorb the three concurrent blocked
    // bodies; the ring's high-water mark was recorded before growth
    // caught up.
    EXPECT_EQ(inBody, 3);
    EXPECT_EQ(mach.counter("gate.ept.elasticSpawns"), 2u);
    EXPECT_EQ(mach.counter("gate.ept.ringDepth"), 3u);

    img->shutdown();
    EXPECT_EQ(mach.counter("gate.ept.shutdownCancels"), 3u);
    sched.run();
}

// ------------------------------------------------ key virtualization

TEST_F(GatePolicyFixture, EptCompartmentsConsumeNoKeysLiftingTheCap)
{
    // 15 keyed MPK compartments + 5 EPT ones: 20 compartments total,
    // impossible under the old key-tagged region model, legal with
    // EPT memory modelled as unmapped outside its VM.
    std::string text = "compartments:\n";
    for (int i = 0; i < 15; ++i) {
        text += "- m" + std::to_string(i) + ":\n";
        text += "    mechanism: intel-mpk\n";
        if (i == 0)
            text += "    default: True\n";
    }
    for (int i = 0; i < 5; ++i) {
        text += "- e" + std::to_string(i) + ":\n";
        text += "    mechanism: vm-ept\n";
        text += "    servers: 1\n";
    }
    text += "libraries:\n- libredis: m0\n- lwip: e0\n";

    SafetyConfig cfg = SafetyConfig::parse(text);
    cfg.heapBytes = 64 * 1024;
    cfg.sharedHeapBytes = 64 * 1024;
    auto img = tc.build(mach, sched, cfg);

    // Keyed compartments take keys 0..14; EPT ones are VM-private.
    for (std::size_t i = 0; i < 15; ++i) {
        EXPECT_FALSE(img->compartmentAt(i).vmPrivate);
        EXPECT_EQ(img->compartmentAt(i).key, static_cast<ProtKey>(i));
    }
    for (std::size_t i = 15; i < 20; ++i)
        EXPECT_TRUE(img->compartmentAt(i).vmPrivate);
    img->shutdown();
}

TEST_F(GatePolicyFixture, VmPrivateMemoryUnmappedOutsideItsVm)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- netA:
    mechanism: vm-ept
- netB:
    mechanism: vm-ept
libraries:
- libredis: app
- lwip: netA
- vfscore: netB
)");
    int *secretA = nullptr;
    bool mpkFaulted = false, crossVmFaulted = false, done = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            secretA = static_cast<int *>(img->heapOf("lwip").alloc(16));
            img->store(secretA, 7);
        });
        // An MPK-compartment thread sees EPT memory as unmapped.
        try {
            img->load(secretA);
        } catch (const ProtectionFault &) {
            mpkFaulted = true;
        }
        // So does a *different* VM: netB's servers can't read netA.
        img->gate("vfscore", "open", [&] {
            try {
                img->load(secretA);
            } catch (const ProtectionFault &) {
                crossVmFaulted = true;
            }
        });
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_TRUE(mpkFaulted);
    EXPECT_TRUE(crossVmFaulted);
    img->shutdown();
}

} // namespace
} // namespace flexos
