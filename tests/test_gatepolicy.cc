/**
 * @file
 * Gate-policy matrix tests: `boundaries:` parse/toText round-trip,
 * wildcard precedence, validation of rules naming unknown
 * compartments, per-(from, to) policy counters under a mixed
 * light/dss image, asymmetric return policies, the per-compartment
 * EPT server pool (`servers:` + elastic growth + ringDepth), and key
 * virtualization (EPT compartments unmapped instead of key-tagged).
 */

#include <gtest/gtest.h>

#include "apps/deploy.hh"
#include "core/image.hh"
#include "core/toolchain.hh"

namespace flexos {
namespace {

struct GatePolicyFixture : ::testing::Test
{
    GatePolicyFixture()
        : scope(mach), sched(mach), reg(LibraryRegistry::standard()),
          tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

// --------------------------------------------------- config surface

TEST_F(GatePolicyFixture, BoundariesParseAndRoundTripThroughToText)
{
    const char *text = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: vm-ept
    servers: 5
libraries:
- libredis: app
- uksched: sys
- lwip: net
boundaries:
- app -> sys: {gate: light}
- '*' -> net: {gate: dss, validate: true}
- net -> '*': {scrub: false}
)";
    SafetyConfig cfg = SafetyConfig::parse(text);
    ASSERT_EQ(cfg.boundaries.size(), 3u);
    EXPECT_EQ(cfg.boundaries[0].from, "app");
    EXPECT_EQ(cfg.boundaries[0].to, "sys");
    EXPECT_EQ(cfg.boundaries[0].flavor, MpkGateFlavor::Light);
    EXPECT_FALSE(cfg.boundaries[0].validate.has_value());
    EXPECT_EQ(cfg.boundaries[1].from, "*");
    EXPECT_EQ(cfg.boundaries[1].validate, true);
    EXPECT_EQ(cfg.boundaries[2].scrub, false);
    EXPECT_EQ(cfg.compartment("net").servers, 5);

    // toText() serializes the section back; reparsing reproduces the
    // exact rules and the same resolved matrix.
    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.boundaries, cfg.boundaries);
    EXPECT_EQ(again.compartment("net").servers, 5);
    GateMatrix m1 = GateMatrix::build(cfg);
    GateMatrix m2 = GateMatrix::build(again);
    for (int f = 0; f < 3; ++f)
        for (int t = 0; t < 3; ++t)
            EXPECT_EQ(m1.at(f, t), m2.at(f, t));
}

TEST_F(GatePolicyFixture, WildcardPrecedenceLayersBySpecificity)
{
    // Callee-side wildcards override caller-side ones (the historical
    // callee-decides rule), exact pairs override both, and unset
    // fields fall through to the less specific layer.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
boundaries:
- '*' -> '*': {validate: true}
- a -> '*': {gate: light}
- '*' -> b: {gate: dss}
- a -> b: {scrub: false}
)");
    GateMatrix m = GateMatrix::build(cfg);

    // a -> c: caller-side wildcard flavour, global validate.
    EXPECT_EQ(m.at(0, 2).flavor, MpkGateFlavor::Light);
    EXPECT_TRUE(m.at(0, 2).validateEntry);
    EXPECT_TRUE(m.at(0, 2).scrubReturn);
    // a -> b: callee-side dss beats caller-side light; the exact rule
    // adds scrub: false without disturbing either.
    EXPECT_EQ(m.at(0, 1).flavor, MpkGateFlavor::Dss);
    EXPECT_TRUE(m.at(0, 1).validateEntry);
    EXPECT_FALSE(m.at(0, 1).scrubReturn);
    // c -> b: callee-side rule only.
    EXPECT_EQ(m.at(2, 1).flavor, MpkGateFlavor::Dss);
    // c -> a: untouched by flavour rules -> default dss.
    EXPECT_EQ(m.at(2, 0).flavor, MpkGateFlavor::Dss);
    EXPECT_TRUE(m.at(2, 0).validateEntry);
    // Policy names carry the overrides.
    EXPECT_EQ(m.at(0, 1).name(),
              std::string("intel-mpk(dss)+validate-scrub"));
}

TEST_F(GatePolicyFixture, LegacyMpkGateKnobDesugarsToWildcardRule)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: intel-mpk
libraries:
- libredis: c1
- lwip: c2
mpk_gate: light
)");
    ASSERT_EQ(cfg.boundaries.size(), 1u);
    EXPECT_EQ(cfg.boundaries[0].from, "*");
    EXPECT_EQ(cfg.boundaries[0].to, "*");
    EXPECT_EQ(cfg.boundaries[0].flavor, MpkGateFlavor::Light);
    GateMatrix m = GateMatrix::build(cfg);
    EXPECT_EQ(m.at(0, 1).flavor, MpkGateFlavor::Light);
    EXPECT_EQ(m.at(1, 0).flavor, MpkGateFlavor::Light);
}

TEST_F(GatePolicyFixture, ValidateRejectsBoundariesNamingUnknowns)
{
    // lint-skip: intentionally invalid configuration.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: a
boundaries:
- a -> ghost: {gate: light}
)");
    EXPECT_THROW(tc.validate(cfg), FatalError);

    // lint-skip: servers on a non-EPT compartment is a user error.
    SafetyConfig cfg2 = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
    servers: 4
libraries:
- libredis: a
)");
    EXPECT_THROW(tc.validate(cfg2), FatalError);

    EXPECT_THROW(SafetyConfig::parse(R"(
# lint-skip: intentionally invalid (unknown flavour name)
compartments:
- a:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: a
boundaries:
- a -> a: {gate: sideways}
)"),
                 FatalError);
}

// ----------------------------------------------- dispatch under load

/** Hot trusted boundary on light, attacker-facing one on dss. */
const char *mixedFlavorConfig = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- hot:
    mechanism: intel-mpk
- cold:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: hot
- lwip: cold
boundaries:
- app -> hot: {gate: light}
)";

TEST_F(GatePolicyFixture, TwoMpkFlavorsRunSimultaneously)
{
    auto img = buildFrom(mixedFlavorConfig);
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        for (int i = 0; i < 3; ++i)
            img->gate("uksched", "yield", [] {}); // app -> hot: light
        img->gate("lwip", "recv", [] {});         // app -> cold: dss
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);

    // Both flavours carried traffic in the same image — the global
    // knob could only ever produce one of these counters.
    EXPECT_EQ(mach.counter("gate.mpk.light"), 3u);
    EXPECT_EQ(mach.counter("gate.mpk.dss"), 1u);

    // The per-(from, to) ledger names each boundary's policy.
    auto stats = img->boundaryStats();
    ASSERT_TRUE(stats.count({0, 1}));
    ASSERT_TRUE(stats.count({0, 2}));
    EXPECT_EQ(stats.at({0, 1}).policy, "intel-mpk(light)");
    EXPECT_EQ(stats.at({0, 1}).count, 3u);
    EXPECT_EQ(stats.at({0, 2}).policy, "intel-mpk(dss)");
    EXPECT_EQ(stats.at({0, 2}).count, 1u);
    EXPECT_EQ(stats.at({0, 1}).from, "app");
    EXPECT_EQ(stats.at({0, 1}).to, "hot");

    // The linker script records the matrix.
    std::string ls = img->linkerScript();
    EXPECT_NE(ls.find("app -> hot : intel-mpk(light)"),
              std::string::npos);
    EXPECT_NE(ls.find("app -> cold : intel-mpk(dss)"),
              std::string::npos);
    img->shutdown();
}

TEST_F(GatePolicyFixture, PolicyValidateForcesEntryCheckOnMpkBoundary)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- app -> sys: {validate: true}
)");
    bool rejected = false, ran = false;
    img->spawnIn("libredis", "t", [&] {
        // MPK gates don't validate entry points on their own (no CFI
        // here); the policy forces the check.
        try {
            img->gate("uksched", "not_an_entry_point", [] {});
        } catch (const CfiViolation &) {
            rejected = true;
        }
        img->gate("uksched", "yield", [&] { ran = true; });
    });
    sched.runUntil([&] { return ran; });
    EXPECT_TRUE(rejected);
    EXPECT_TRUE(ran);
    EXPECT_GT(mach.counter("gate.validate"), 0u);
    img->shutdown();
}

TEST_F(GatePolicyFixture, AsymmetricReturnPolicyIsCheaper)
{
    auto cost = [&](const char *extra) {
        Machine m2;
        MachineScope s2(m2);
        Scheduler sched2(m2);
        Toolchain tc2(reg);
        SafetyConfig cfg = SafetyConfig::parse(
            std::string(R"(
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: intel-mpk
libraries:
- libredis: c1
- lwip: c2
)") + extra);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        auto img = tc2.build(m2, sched2, cfg);
        Cycles before = 0, after = 0;
        img->spawnIn("libredis", "t", [&] {
            // Warm up the sim stack so both runs charge identically.
            img->gate("lwip", "recv", [] {});
            before = m2.cycles();
            for (int i = 0; i < 100; ++i)
                img->gate("lwip", "recv", [] {});
            after = m2.cycles();
        });
        sched2.run();
        return after - before;
    };
    Cycles scrubbed = cost("");
    Cycles unscrubbed = cost("boundaries:\n- c1 -> c2: {scrub: false}\n");
    EXPECT_LT(unscrubbed, scrubbed);
    // Exactly the return-side register save/zero per crossing.
    EXPECT_EQ(scrubbed - unscrubbed,
              100 * mach.timing.registerSaveZero);
}

// --------------------------------------------------- EPT server pool

TEST_F(GatePolicyFixture, EptPoolGrowsElasticallyAndTracksRingDepth)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: vm-ept
    servers: 1
libraries:
- libredis: app
- lwip: net
)");
    WaitQueue never(sched);
    int inBody = 0;
    for (int i = 0; i < 3; ++i) {
        img->spawnIn("libredis", "caller-" + std::to_string(i), [&] {
            img->gate("lwip", "recv", [&] {
                ++inBody;
                never.wait();
            });
        });
    }
    EXPECT_FALSE(sched.run()); // all callers blocked in RPC bodies

    // The base pool of 1 grew to absorb the three concurrent blocked
    // bodies; the ring's high-water mark was recorded before growth
    // caught up.
    EXPECT_EQ(inBody, 3);
    EXPECT_EQ(mach.counter("gate.ept.elasticSpawns"), 2u);
    EXPECT_EQ(mach.counter("gate.ept.ringDepth"), 3u);

    img->shutdown();
    EXPECT_EQ(mach.counter("gate.ept.shutdownCancels"), 3u);
    sched.run();
}

// ------------------------------------------------ key virtualization

TEST_F(GatePolicyFixture, EptCompartmentsConsumeNoKeysLiftingTheCap)
{
    // 15 keyed MPK compartments + 5 EPT ones: 20 compartments total,
    // impossible under the old key-tagged region model, legal with
    // EPT memory modelled as unmapped outside its VM.
    std::string text = "compartments:\n";
    for (int i = 0; i < 15; ++i) {
        text += "- m" + std::to_string(i) + ":\n";
        text += "    mechanism: intel-mpk\n";
        if (i == 0)
            text += "    default: True\n";
    }
    for (int i = 0; i < 5; ++i) {
        text += "- e" + std::to_string(i) + ":\n";
        text += "    mechanism: vm-ept\n";
        text += "    servers: 1\n";
    }
    text += "libraries:\n- libredis: m0\n- lwip: e0\n";

    SafetyConfig cfg = SafetyConfig::parse(text);
    cfg.heapBytes = 64 * 1024;
    cfg.sharedHeapBytes = 64 * 1024;
    auto img = tc.build(mach, sched, cfg);

    // Keyed compartments take keys 0..14; EPT ones are VM-private.
    for (std::size_t i = 0; i < 15; ++i) {
        EXPECT_FALSE(img->compartmentAt(i).vmPrivate);
        EXPECT_EQ(img->compartmentAt(i).key, static_cast<ProtKey>(i));
    }
    for (std::size_t i = 15; i < 20; ++i)
        EXPECT_TRUE(img->compartmentAt(i).vmPrivate);
    img->shutdown();
}

TEST_F(GatePolicyFixture, VmPrivateMemoryUnmappedOutsideItsVm)
{
    auto img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- netA:
    mechanism: vm-ept
- netB:
    mechanism: vm-ept
libraries:
- libredis: app
- lwip: netA
- vfscore: netB
)");
    int *secretA = nullptr;
    bool mpkFaulted = false, crossVmFaulted = false, done = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            secretA = static_cast<int *>(img->heapOf("lwip").alloc(16));
            img->store(secretA, 7);
        });
        // An MPK-compartment thread sees EPT memory as unmapped.
        try {
            img->load(secretA);
        } catch (const ProtectionFault &) {
            mpkFaulted = true;
        }
        // So does a *different* VM: netB's servers can't read netA.
        img->gate("vfscore", "open", [&] {
            try {
                img->load(secretA);
            } catch (const ProtectionFault &) {
                crossVmFaulted = true;
            }
        });
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_TRUE(mpkFaulted);
    EXPECT_TRUE(crossVmFaulted);
    img->shutdown();
}

} // namespace
} // namespace flexos
