/**
 * @file
 * Unit tests for uksched: spawn/join/yield ordering, blocking,
 * virtual-time sleep, mutex/semaphore semantics, backend hooks, and the
 * free-running (uncharged) thread mode.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "uksched/scheduler.hh"

namespace flexos {
namespace {

struct SchedFixture : ::testing::Test
{
    Machine mach;
    MachineScope scope{mach};
    Scheduler sched{mach};
};

TEST_F(SchedFixture, RunsSingleThreadToCompletion)
{
    bool ran = false;
    sched.spawn("t", [&] { ran = true; });
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(ran);
}

TEST_F(SchedFixture, RoundRobinInterleavesAtYields)
{
    std::vector<std::string> log;
    sched.spawn("a", [&] {
        log.push_back("a1");
        sched.yield();
        log.push_back("a2");
    });
    sched.spawn("b", [&] {
        log.push_back("b1");
        sched.yield();
        log.push_back("b2");
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(log,
              (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
}

TEST_F(SchedFixture, JoinWaitsForTarget)
{
    std::vector<int> order;
    Thread *worker = sched.spawn("worker", [&] {
        sched.yield();
        sched.yield();
        order.push_back(1);
    });
    sched.spawn("joiner", [&] {
        sched.join(worker);
        order.push_back(2);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SchedFixture, JoinFinishedThreadReturnsImmediately)
{
    Thread *t = sched.spawn("quick", [] {});
    sched.spawn("j", [&] { sched.join(t); });
    EXPECT_TRUE(sched.run());
}

TEST_F(SchedFixture, DeadlockDetectedAsFalse)
{
    WaitQueue q(sched);
    sched.spawn("stuck", [&] { q.wait(); });
    EXPECT_FALSE(sched.run());
}

TEST_F(SchedFixture, SleepAdvancesVirtualClock)
{
    std::uint64_t woke = 0;
    sched.spawn("sleeper", [&] {
        sched.sleepNs(1'000'000); // 1 ms
        woke = mach.nanoseconds();
    });
    EXPECT_TRUE(sched.run());
    EXPECT_GE(woke, 1'000'000u);
    // Idle jump: not far past the deadline either.
    EXPECT_LT(woke, 1'200'000u);
}

TEST_F(SchedFixture, SleepersWakeInDeadlineOrder)
{
    std::vector<std::string> order;
    sched.spawn("late", [&] {
        sched.sleepNs(2'000'000);
        order.push_back("late");
    });
    sched.spawn("early", [&] {
        sched.sleepNs(1'000'000);
        order.push_back("early");
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(order, (std::vector<std::string>{"early", "late"}));
}

TEST_F(SchedFixture, ThreadExceptionIsCaptured)
{
    Thread *t = sched.spawn("boom", [] {
        throw std::runtime_error("exploded");
    });
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(t->failed());
    EXPECT_NE(t->error().find("exploded"), std::string::npos);
}

TEST_F(SchedFixture, WaitQueueWakeOneFifo)
{
    WaitQueue q(sched);
    std::vector<int> order;
    sched.spawn("w1", [&] {
        q.wait();
        order.push_back(1);
    });
    sched.spawn("w2", [&] {
        q.wait();
        order.push_back(2);
    });
    sched.spawn("waker", [&] {
        sched.yield(); // let both block
        q.wakeOne();
        q.wakeOne();
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SchedFixture, MutexProvidesExclusion)
{
    Mutex mtx(sched);
    int inside = 0;
    int maxInside = 0;
    auto body = [&] {
        for (int i = 0; i < 10; ++i) {
            LockGuard g(mtx);
            ++inside;
            maxInside = std::max(maxInside, inside);
            sched.yield(); // try to interleave within the section
            --inside;
        }
    };
    sched.spawn("m1", body);
    sched.spawn("m2", body);
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(maxInside, 1);
}

TEST_F(SchedFixture, MutexUnlockByNonOwnerPanics)
{
    Mutex mtx(sched);
    Thread *t = sched.spawn("bad", [&] { mtx.unlock(); });
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(t->failed());
}

TEST_F(SchedFixture, SemaphoreCountsPermits)
{
    Semaphore sem(sched, 0);
    std::vector<int> order;
    sched.spawn("consumer", [&] {
        sem.wait();
        order.push_back(1);
        sem.wait();
        order.push_back(2);
    });
    sched.spawn("producer", [&] {
        order.push_back(0);
        sem.post();
        sched.yield();
        sem.post();
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(SchedFixture, ContextSwitchChargesCycles)
{
    sched.spawn("t", [&] { sched.yield(); });
    Cycles before = mach.cycles();
    sched.run();
    EXPECT_GE(mach.cycles() - before, 2 * mach.timing.contextSwitch);
}

TEST_F(SchedFixture, FreeRunningThreadChargesNothing)
{
    Thread *t = sched.spawn("client", [&] {
        consumeCycles(1'000'000);
        sched.yield();
        consumeCycles(1'000'000);
    });
    t->freeRunning = true;
    sched.run();
    EXPECT_EQ(mach.cycles(), 0u);
}

TEST_F(SchedFixture, ChargedThreadNextToFreeRunningStillCharges)
{
    Thread *c = sched.spawn("client", [&] {
        consumeCycles(500);
        sched.yield();
    });
    c->freeRunning = true;
    sched.spawn("server", [&] {
        consumeCycles(100);
        sched.yield();
    });
    sched.run();
    // Only server work + its context switches are on the clock.
    EXPECT_GE(mach.cycles(), 100u);
    EXPECT_LT(mach.cycles(), 500u);
}

TEST_F(SchedFixture, OnThreadCreateHookRuns)
{
    int created = 0;
    sched.onThreadCreate = [&](Thread &t) {
        ++created;
        t.pkru = Pkru::allowing({2});
    };
    Thread *t = sched.spawn("hooked", [] {});
    EXPECT_EQ(created, 1);
    EXPECT_TRUE(t->pkru.permits(2, AccessType::Read));
    sched.run();
}

TEST_F(SchedFixture, SwitchInstallsThreadPkru)
{
    // The MPK backend behaviour (paper 3.2): the scheduler hook swaps
    // the protection domain on context switch.
    Pkru seen;
    Thread *t = sched.spawn("domain", [&] { seen = mach.pkru; });
    t->pkru = Pkru::allowing({5});
    sched.run();
    EXPECT_TRUE(seen.permits(5, AccessType::Write));
    EXPECT_FALSE(seen.permits(1, AccessType::Read));
    // Back in the scheduler, the TCB runs unrestricted.
    EXPECT_EQ(mach.pkru, Pkru(Pkru::allowAllValue));
}

TEST_F(SchedFixture, OnSwitchHookObservesTarget)
{
    std::vector<std::string> switched;
    sched.onSwitch = [&](Thread *, Thread *next) {
        switched.push_back(next->name());
    };
    sched.spawn("x", [&] { sched.yield(); });
    sched.run();
    EXPECT_EQ(switched.size(), 2u);
    EXPECT_EQ(switched[0], "x");
}

TEST_F(SchedFixture, RunUntilStopsAtPredicate)
{
    int progress = 0;
    sched.spawn("worker", [&] {
        for (int i = 0; i < 100; ++i) {
            ++progress;
            sched.yield();
        }
    });
    EXPECT_TRUE(sched.runUntil([&] { return progress >= 5; }));
    EXPECT_GE(progress, 5);
    EXPECT_LT(progress, 100);
}

TEST_F(SchedFixture, RunUntilReturnsFalseWhenWorkDriesUp)
{
    sched.spawn("short", [] {});
    EXPECT_FALSE(sched.runUntil([] { return false; }, 1000));
}

} // namespace
} // namespace flexos
