/**
 * @file
 * Unit tests for the simulated machine: PKRU semantics, region map,
 * MMU checks, enforcement modes, virtual clock.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "machine/machine.hh"

namespace flexos {
namespace {

TEST(Pkru, AllowAllPermitsEverything)
{
    Pkru p(Pkru::allowAllValue);
    for (unsigned k = 0; k < numProtKeys; ++k) {
        EXPECT_TRUE(p.permits(k, AccessType::Read));
        EXPECT_TRUE(p.permits(k, AccessType::Write));
    }
}

TEST(Pkru, DenyAllBlocksDataAccess)
{
    Pkru p(Pkru::denyAllValue);
    for (unsigned k = 0; k < numProtKeys; ++k) {
        EXPECT_FALSE(p.permits(k, AccessType::Read));
        EXPECT_FALSE(p.permits(k, AccessType::Write));
    }
}

TEST(Pkru, ExecUnrestricted)
{
    // MPK does not gate instruction fetches (paper 4.1: W^X + gate
    // hardcoding provide the execution story).
    Pkru p(Pkru::denyAllValue);
    EXPECT_TRUE(p.permits(3, AccessType::Exec));
}

TEST(Pkru, AllowingSelectedKeysOnly)
{
    Pkru p = Pkru::allowing({1, 15});
    EXPECT_TRUE(p.permits(1, AccessType::Write));
    EXPECT_TRUE(p.permits(15, AccessType::Read));
    EXPECT_FALSE(p.permits(0, AccessType::Read));
    EXPECT_FALSE(p.permits(14, AccessType::Write));
}

TEST(Pkru, ReadOnlyKey)
{
    Pkru p(Pkru::denyAllValue);
    p.allowReadOnly(4);
    EXPECT_TRUE(p.permits(4, AccessType::Read));
    EXPECT_FALSE(p.permits(4, AccessType::Write));
}

TEST(Pkru, DenyAfterAllow)
{
    Pkru p = Pkru::allowing({2});
    p.deny(2);
    EXPECT_FALSE(p.permits(2, AccessType::Read));
}

TEST(Pkru, OutOfRangeKeyPanics)
{
    Pkru p;
    EXPECT_THROW(p.permits(16, AccessType::Read), PanicError);
}

TEST(MemoryMap, FindCoversInterior)
{
    MemoryMap mm;
    char buf[256];
    mm.add(buf, sizeof(buf), 5, "heap");
    const MemRegion *r = mm.find(buf + 100);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->key, 5);
    EXPECT_EQ(r->name, "heap");
}

TEST(MemoryMap, FindMissesOutside)
{
    MemoryMap mm;
    char buf[256];
    mm.add(buf + 64, 64, 1, "mid");
    EXPECT_EQ(mm.find(buf), nullptr);
    EXPECT_EQ(mm.find(buf + 128), nullptr);
    EXPECT_NE(mm.find(buf + 64), nullptr);
    EXPECT_NE(mm.find(buf + 127), nullptr);
}

TEST(MemoryMap, OverlapPanics)
{
    MemoryMap mm;
    char buf[256] = {};
    mm.add(buf + 32, 128, 1, "a");
    EXPECT_THROW(mm.add(buf + 96, 64, 2, "b"), PanicError);
    EXPECT_THROW(mm.add(buf + 16, 32, 2, "c"), PanicError);
}

TEST(MemoryMap, FindOverlapSeesRangeNotJustFirstByte)
{
    MemoryMap mm;
    char buf[256];
    mm.add(buf + 64, 64, 2, "mid");
    // Point lookup misses, range lookup hits.
    EXPECT_EQ(mm.find(buf + 56), nullptr);
    const MemRegion *r = mm.findOverlap(buf + 56, 16);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name, "mid");
    // A range ending exactly at the region base does not overlap.
    EXPECT_EQ(mm.findOverlap(buf + 56, 8), nullptr);
    // A range starting inside still overlaps.
    EXPECT_NE(mm.findOverlap(buf + 100, 4), nullptr);
    // A range past the end does not.
    EXPECT_EQ(mm.findOverlap(buf + 128, 16), nullptr);
}

TEST(MemoryMap, ForEachOverlapVisitsAllRegionsInOrder)
{
    MemoryMap mm;
    char buf[256];
    mm.add(buf, 64, 1, "a");
    mm.add(buf + 64, 64, 2, "b");
    mm.add(buf + 192, 64, 3, "c");
    std::vector<std::string> seen;
    mm.forEachOverlap(buf + 32, 192, [&](const MemRegion &r) {
        seen.push_back(r.name);
    });
    // Overlaps a and b fully, skips the hole, ends inside c.
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], "a");
    EXPECT_EQ(seen[1], "b");
    EXPECT_EQ(seen[2], "c");
}

TEST(Machine, AccessExtendingIntoDeniedRegionFaults)
{
    Machine m;
    char buf[64];
    m.memMap.add(buf + 8, 32, 3, "denied");
    m.pkru = Pkru::allowing({0});
    // Starts in unregistered memory, extends into the denied region.
    EXPECT_THROW(m.checkAccess(buf, 16, AccessType::Write),
                 ProtectionFault);
    EXPECT_EQ(m.violations, 1u);
    EXPECT_NO_THROW(m.checkAccess(buf, 8, AccessType::Write));
}

TEST(MemoryMap, RemoveAndRetag)
{
    MemoryMap mm;
    char buf[64];
    mm.add(buf, 64, 1, "a");
    mm.retag(buf, 9);
    EXPECT_EQ(mm.find(buf)->key, 9);
    mm.remove(buf);
    EXPECT_EQ(mm.find(buf), nullptr);
    EXPECT_EQ(mm.count(), 0u);
}

TEST(Machine, ClockAccumulatesAndConverts)
{
    Machine m;
    m.consume(2'200'000'000ull); // one second at 2.2 GHz
    EXPECT_DOUBLE_EQ(m.seconds(), 1.0);
    EXPECT_EQ(m.nanoseconds(), 1'000'000'000ull);
}

TEST(Machine, PerByteChargesInChunks)
{
    Machine m;
    m.consumePerByte(1, 1);
    EXPECT_EQ(m.cycles(), 1u);
    m.consumePerByte(17, 1);
    EXPECT_EQ(m.cycles(), 3u);
}

TEST(Machine, ChargingCanBeSuspended)
{
    Machine m;
    m.chargingEnabled = false;
    m.consume(1000);
    m.consumePerByte(4096, 1);
    EXPECT_EQ(m.cycles(), 0u);
}

TEST(Machine, EnforcingFaultsOnDeniedAccess)
{
    Machine m;
    char buf[64];
    m.memMap.add(buf, sizeof(buf), 3, "comp1-heap");
    m.pkru = Pkru::allowing({0});
    EXPECT_THROW(m.checkAccess(buf, 8, AccessType::Read), ProtectionFault);
    EXPECT_EQ(m.violations, 1u);
}

TEST(Machine, FaultCarriesContext)
{
    Machine m;
    char buf[64];
    m.memMap.add(buf, sizeof(buf), 3, "comp1-heap");
    m.pkru = Pkru::allowing({0});
    try {
        m.checkAccess(buf + 4, 4, AccessType::Write);
        FAIL() << "expected ProtectionFault";
    } catch (const ProtectionFault &f) {
        EXPECT_EQ(f.key, 3);
        EXPECT_EQ(f.region, "comp1-heap");
        EXPECT_EQ(f.access, AccessType::Write);
    }
}

TEST(Machine, PermissiveCountsButPasses)
{
    Machine m;
    m.enforcement = Enforcement::Permissive;
    char buf[64];
    m.memMap.add(buf, sizeof(buf), 3, "x");
    m.pkru = Pkru(Pkru::denyAllValue);
    EXPECT_NO_THROW(m.checkAccess(buf, 1, AccessType::Read));
    EXPECT_EQ(m.violations, 1u);
}

TEST(Machine, OffSkipsChecks)
{
    Machine m;
    m.enforcement = Enforcement::Off;
    char buf[64];
    m.memMap.add(buf, sizeof(buf), 3, "x");
    m.pkru = Pkru(Pkru::denyAllValue);
    EXPECT_NO_THROW(m.checkAccess(buf, 1, AccessType::Write));
    EXPECT_EQ(m.violations, 0u);
}

TEST(Machine, UnregisteredMemoryAlwaysPasses)
{
    Machine m;
    m.pkru = Pkru(Pkru::denyAllValue);
    int x = 0;
    EXPECT_NO_THROW(m.checkAccess(&x, sizeof(x), AccessType::Write));
}

TEST(Machine, ReadOnlySharedRegion)
{
    // A read-only data sharing strategy: key readable but not writable.
    Machine m;
    char buf[64];
    m.memMap.add(buf, sizeof(buf), 7, "ro-shared");
    m.pkru = Pkru(Pkru::denyAllValue);
    m.pkru.allowReadOnly(7);
    EXPECT_NO_THROW(m.checkAccess(buf, 1, AccessType::Read));
    EXPECT_THROW(m.checkAccess(buf, 1, AccessType::Write),
                 ProtectionFault);
}

TEST(Machine, CountersAccumulate)
{
    Machine m;
    m.bump("gates.mpk");
    m.bump("gates.mpk", 4);
    EXPECT_EQ(m.counter("gates.mpk"), 5u);
    EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(MachineScope, NestsAndRestores)
{
    Machine a, b;
    EXPECT_FALSE(Machine::hasCurrent());
    {
        MachineScope sa(a);
        EXPECT_EQ(&Machine::current(), &a);
        {
            MachineScope sb(b);
            EXPECT_EQ(&Machine::current(), &b);
            consumeCycles(10);
        }
        EXPECT_EQ(&Machine::current(), &a);
    }
    EXPECT_FALSE(Machine::hasCurrent());
    EXPECT_EQ(b.cycles(), 10u);
    EXPECT_EQ(a.cycles(), 0u);
}

} // namespace
} // namespace flexos
