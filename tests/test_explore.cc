/**
 * @file
 * Tests for partial safety ordering: order axioms, refinement,
 * Hasse-diagram construction, budget pruning, monotone exploration
 * savings, and the Figure 6/8 sweep space.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.hh"
#include "core/toolchain.hh"
#include "explore/poset.hh"
#include "explore/wayfinder.hh"

namespace flexos {
namespace {

ConfigPoint
mk(std::vector<int> part, std::vector<unsigned> hard, int mech = 1,
   int share = 1)
{
    ConfigPoint p;
    p.partition = std::move(part);
    p.hardening = std::move(hard);
    p.mechanismRank = mech;
    p.sharingRank = share;
    return p;
}

TEST(Refines, BasicCases)
{
    EXPECT_TRUE(refines({0, 1, 2}, {0, 0, 0}));  // finer refines coarser
    EXPECT_FALSE(refines({0, 0, 0}, {0, 1, 2}));
    EXPECT_TRUE(refines({0, 1, 0}, {0, 1, 0}));  // reflexive
    EXPECT_TRUE(refines({0, 1, 1}, {0, 1, 1}));
    EXPECT_FALSE(refines({0, 0, 1}, {0, 1, 0})); // crosswise
}

TEST(CompareSafety, PaperC1C2C3Chain)
{
    // Paper section 5: C1 no isolation/no hardening <= C2 two
    // compartments <= C3 adding CFI on top.
    ConfigPoint c1 = mk({0, 0}, {0, 0});
    ConfigPoint c2 = mk({0, 1}, {0, 0});
    ConfigPoint c3 = mk({0, 1}, {1, 1});
    EXPECT_EQ(compareSafety(c1, c2), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(c2, c3), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(c1, c3), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(c3, c1), SafetyOrder::Greater);
}

TEST(CompareSafety, IncomparableDimensions)
{
    // More compartments vs. more hardening: not comparable.
    ConfigPoint a = mk({0, 1}, {0, 0});
    ConfigPoint b = mk({0, 0}, {1, 1});
    EXPECT_EQ(compareSafety(a, b), SafetyOrder::Incomparable);

    // Hardening on different components: not comparable.
    ConfigPoint c = mk({0, 0}, {1, 0});
    ConfigPoint d = mk({0, 0}, {0, 1});
    EXPECT_EQ(compareSafety(c, d), SafetyOrder::Incomparable);
}

TEST(CompareSafety, MechanismAndSharingRank)
{
    ConfigPoint mpk = mk({0, 1}, {0, 0}, 1, 1);
    ConfigPoint ept = mk({0, 1}, {0, 0}, 2, 1);
    EXPECT_EQ(compareSafety(mpk, ept), SafetyOrder::Less);

    ConfigPoint sharedStack = mk({0, 1}, {0, 0}, 1, 0);
    EXPECT_EQ(compareSafety(sharedStack, mpk), SafetyOrder::Less);
}

TEST(CompareSafety, EqualAndReflexive)
{
    ConfigPoint a = mk({0, 1}, {1, 0});
    EXPECT_EQ(compareSafety(a, a), SafetyOrder::Equal);
}

/** Property: antisymmetry and transitivity over random samples. */
TEST(CompareSafety, OrderAxiomsHoldOnRandomSamples)
{
    Rng rng(17);
    std::vector<ConfigPoint> pts;
    for (int i = 0; i < 40; ++i) {
        std::vector<int> part(4);
        for (int &b : part)
            b = static_cast<int>(rng.below(3));
        std::vector<unsigned> hard(4);
        for (unsigned &h : hard)
            h = static_cast<unsigned>(rng.below(4));
        pts.push_back(mk(part, hard, static_cast<int>(rng.below(3)),
                         static_cast<int>(rng.below(2))));
    }

    for (const auto &a : pts) {
        for (const auto &b : pts) {
            SafetyOrder ab = compareSafety(a, b);
            SafetyOrder ba = compareSafety(b, a);
            // Antisymmetry.
            if (ab == SafetyOrder::Less)
                EXPECT_EQ(ba, SafetyOrder::Greater);
            if (ab == SafetyOrder::Equal)
                EXPECT_EQ(ba, SafetyOrder::Equal);
            // Transitivity.
            for (const auto &c : pts) {
                if (ab == SafetyOrder::Less &&
                    compareSafety(b, c) == SafetyOrder::Less)
                    EXPECT_EQ(compareSafety(a, c), SafetyOrder::Less);
            }
        }
    }
}

TEST(Poset, HasseEdgesSkipTransitive)
{
    SafetyPoset poset;
    std::size_t c1 = poset.add(mk({0, 0}, {0, 0}));
    std::size_t c2 = poset.add(mk({0, 1}, {0, 0}));
    std::size_t c3 = poset.add(mk({0, 1}, {1, 1}));
    poset.buildEdges();
    // c1 -> c2 -> c3 but no direct c1 -> c3 edge.
    EXPECT_EQ(poset.coversOf(c1), std::vector<std::size_t>{c2});
    EXPECT_EQ(poset.coversOf(c2), std::vector<std::size_t>{c3});
    EXPECT_TRUE(poset.coversOf(c3).empty());
}

TEST(Poset, SafestWithinBudgetPicksMaximal)
{
    SafetyPoset poset;
    std::size_t fast = poset.add(mk({0, 0}, {0, 0}));
    std::size_t mid = poset.add(mk({0, 1}, {0, 0}));
    std::size_t safe = poset.add(mk({0, 1}, {1, 1}));
    std::size_t side = poset.add(mk({0, 0}, {1, 1}));
    poset.at(fast).perf = 100;
    poset.at(mid).perf = 70;
    poset.at(safe).perf = 30; // misses the budget below
    poset.at(side).perf = 60;
    poset.buildEdges();

    std::vector<std::size_t> best = poset.safestWithin(50);
    std::set<std::size_t> bestSet(best.begin(), best.end());
    // 'safe' misses the budget; 'mid' and 'side' are maximal among the
    // remaining; 'fast' is dominated by 'mid'.
    EXPECT_EQ(bestSet, (std::set<std::size_t>{mid, side}));
}

TEST(Poset, ExploreSkipsDominatedEvaluations)
{
    // A chain of increasing safety with monotonically decreasing
    // performance: exploration must stop evaluating past the first
    // node under budget.
    SafetyPoset poset;
    for (unsigned h = 0; h <= 3; ++h) {
        std::vector<unsigned> hard(2);
        hard[0] = h >= 1 ? 1 : 0;
        hard[1] = h >= 2 ? 1 : 0;
        ConfigPoint p = mk({0, 1}, hard, 1, 1);
        if (h == 3)
            p.mechanismRank = 2;
        poset.add(p);
    }
    poset.buildEdges();

    int evals = 0;
    std::size_t ran = poset.explore(
        [&](ConfigPoint &p) {
            ++evals;
            // Perf drops sharply with each hardening step.
            double perf = 100;
            for (unsigned h : p.hardening)
                perf -= h * 45;
            return perf;
        },
        40);
    EXPECT_LT(ran, poset.size()); // pruning saved evaluations
    EXPECT_EQ(static_cast<std::size_t>(evals), ran);
}

TEST(Poset, DotOutputMarksWinners)
{
    SafetyPoset poset;
    poset.add(mk({0, 0}, {0, 0}));
    poset.add(mk({0, 1}, {0, 0}));
    poset.at(0).perf = 90;
    poset.at(0).label = "A";
    poset.at(1).perf = 80;
    poset.at(1).label = "B";
    poset.buildEdges();
    std::string dot = poset.toDot(50);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("shape=star"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

// ------------------------------------------------------------ wayfinder

TEST(Wayfinder, SpaceHas80DistinctConfigurations)
{
    auto space = wayfinder::fig6Space();
    EXPECT_EQ(space.size(), 80u);
    std::set<std::string> seen;
    for (const auto &p : space) {
        std::string key;
        for (int b : p.partition)
            key += std::to_string(b);
        for (unsigned h : p.hardening)
            key += std::to_string(h);
        seen.insert(key);
    }
    EXPECT_EQ(seen.size(), 80u);
}

TEST(Wayfinder, PartitionsMatchFigure8Strategies)
{
    const auto &parts = wayfinder::fig6Partitions();
    ASSERT_EQ(parts.size(), 5u);
    std::multiset<int> counts;
    for (const auto &p : parts) {
        ConfigPoint cp;
        cp.partition = p;
        counts.insert(cp.compartments());
    }
    EXPECT_EQ(counts, (std::multiset<int>{1, 2, 2, 2, 3}));
}

TEST(Wayfinder, ConfigsValidateAndBuild)
{
    auto space = wayfinder::fig6Space();
    // Spot-check a handful of corners: the all-in-one, the 3-comp with
    // full hardening, and one asymmetric point.
    for (std::size_t idx : {0ul, 79ul, 37ul}) {
        SafetyConfig cfg =
            wayfinder::toSafetyConfig(space[idx], "libredis");
        LibraryRegistry reg = LibraryRegistry::standard();
        Toolchain tc(reg);
        EXPECT_NO_THROW(tc.validate(cfg)) << idx;
    }
}

TEST(Wayfinder, MeasuredThroughputOrdersSanely)
{
    auto space = wayfinder::fig6Space();
    // Config 0: no isolation, no hardening = fastest corner.
    double fastest = wayfinder::measureRedis(space[0], 200);
    // Config 79: 3 compartments, everything hardened = slow corner.
    double slowest = wayfinder::measureRedis(space[79], 200);
    EXPECT_GT(fastest, slowest * 1.5);
}

// ------------------------------------------------- mixed mechanisms

TEST(CompareSafety, PerBlockMechanismsOrderComponentWise)
{
    // Same partition {0,1}: all-EPT dominates MPK+EPT dominates
    // all-MPK; MPK+EPT and EPT+MPK are incomparable.
    auto mkMech = [](std::vector<int> blocks) {
        ConfigPoint p;
        p.partition = {0, 1};
        p.hardening = {0, 0};
        p.blockMechanism = std::move(blocks);
        return p;
    };
    ConfigPoint allMpk = mkMech({1, 1});
    ConfigPoint mixed = mkMech({1, 2});
    ConfigPoint allEpt = mkMech({2, 2});
    ConfigPoint flipped = mkMech({2, 1});
    EXPECT_EQ(compareSafety(allMpk, mixed), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(mixed, allEpt), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(allMpk, allEpt), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(mixed, flipped), SafetyOrder::Incomparable);
}

TEST(CompareSafety, MixedComparableWithHomogeneousScalar)
{
    // A scalar-rank (homogeneous) point and a per-block point compare
    // through the same component-wise rule.
    ConfigPoint homogeneous = mk({0, 1}, {0, 0}, /*mech=*/1);
    ConfigPoint mixed;
    mixed.partition = {0, 1};
    mixed.hardening = {0, 0};
    mixed.blockMechanism = {1, 2}; // mpk + ept
    EXPECT_EQ(compareSafety(homogeneous, mixed), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(mixed, homogeneous), SafetyOrder::Greater);
}

TEST(Wayfinder, MixedSpaceEnumeratesPerBlockAssignments)
{
    auto space = wayfinder::mixedMechanismSpace();
    // 5 partitions with {1,2,2,2,3} blocks over {none, mpk, ept,
    // cheri}: 4 + 16 + 16 + 16 + 64.
    EXPECT_EQ(space.size(), 116u);
    std::set<std::string> seen;
    for (const auto &p : space) {
        EXPECT_EQ(p.blockMechanism.size(),
                  static_cast<std::size_t>(p.compartments()));
        std::string key;
        for (int b : p.partition)
            key += std::to_string(b);
        key += "|";
        for (int m : p.blockMechanism)
            key += std::to_string(m);
        seen.insert(key);
    }
    EXPECT_EQ(seen.size(), 116u);
}

TEST(Wayfinder, MixedConfigsValidateAndMaterializeMechanisms)
{
    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);
    auto space = wayfinder::mixedMechanismSpace();
    int heterogeneous = 0;
    for (const auto &p : space) {
        SafetyConfig cfg = wayfinder::toSafetyConfig(p, "libredis");
        EXPECT_NO_THROW(tc.validate(cfg));
        if (cfg.mechanisms().size() > 1)
            ++heterogeneous;
        // Each block's compartment carries its assigned mechanism.
        static const Mechanism byRank[] = {
            Mechanism::None, Mechanism::IntelMpk, Mechanism::VmEpt,
            Mechanism::Cheri};
        for (std::size_t c = 0; c < p.partition.size(); ++c) {
            Mechanism want =
                byRank[p.blockMechanism[static_cast<std::size_t>(
                    p.partition[c])]];
            EXPECT_EQ(cfg.compartments[static_cast<std::size_t>(
                                           p.partition[c])]
                          .mechanism,
                      want);
        }
    }
    EXPECT_GT(heterogeneous, 0);
}

TEST(Wayfinder, MixedPointMeasuresBetweenHomogeneousCorners)
{
    // Partition E (3 blocks): all-MPK vs net-block-on-EPT vs all-EPT.
    ConfigPoint base;
    base.partition = {0, 0, 1, 2};
    base.hardening = {0, 0, 0, 0};
    base.sharingRank = 1;

    auto withMechs = [&](std::vector<int> m) {
        ConfigPoint p = base;
        p.blockMechanism = std::move(m);
        return p;
    };
    double allMpk =
        wayfinder::measureRedis(withMechs({1, 1, 1}), 150);
    double netEpt =
        wayfinder::measureRedis(withMechs({1, 1, 2}), 150);
    double allEpt =
        wayfinder::measureRedis(withMechs({2, 2, 2}), 150);
    // Stronger mechanisms on more boundaries cost more.
    EXPECT_GT(allMpk, netEpt);
    EXPECT_GT(netEpt, allEpt);
}

TEST(Wayfinder, MixedLabelsRenderMechanisms)
{
    auto space = wayfinder::mixedMechanismSpace();
    // The last point of the last partition is all-cheri; an all-ept
    // point appears earlier in the same enumeration.
    std::string label = wayfinder::pointLabel(space.back(), "libredis");
    EXPECT_NE(label.find("{"), std::string::npos);
    EXPECT_NE(label.find("cheri"), std::string::npos);
    bool sawEpt = false;
    for (const auto &p : space)
        if (wayfinder::pointLabel(p, "libredis").find("ept") !=
            std::string::npos)
            sawEpt = true;
    EXPECT_TRUE(sawEpt);
}

TEST(Wayfinder, LabelsRenderPartitionAndHardening)
{
    auto space = wayfinder::fig6Space();
    std::string label = wayfinder::pointLabel(space[79], "libredis");
    EXPECT_NE(label.find("/"), std::string::npos);
    EXPECT_NE(label.find("●"), std::string::npos);
}

TEST(CompareSafety, DeniedEdgeSupersetIsSafer)
{
    ConfigPoint base;
    base.partition = {0, 0, 1, 2};
    base.hardening = {0, 0, 0, 0};

    ConfigPoint one = base, two = base, other = base;
    one.deniedEdges = {{1, 2}};
    two.deniedEdges = {{1, 2}, {2, 1}};
    other.deniedEdges = {{2, 1}};

    // Denying more edges is safer; disjoint sets are incomparable.
    EXPECT_EQ(compareSafety(base, one), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(one, two), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(two, one), SafetyOrder::Greater);
    EXPECT_EQ(compareSafety(one, other), SafetyOrder::Incomparable);

    // Across different partitions block ids do not line up: the
    // dimension only stays comparable when neither denies anything.
    ConfigPoint coarser = base;
    coarser.partition = {0, 0, 1, 1};
    EXPECT_EQ(compareSafety(coarser, base), SafetyOrder::Less);
    coarser.deniedEdges = {{0, 1}};
    EXPECT_EQ(compareSafety(coarser, one), SafetyOrder::Incomparable);
}

TEST(Wayfinder, LeastPrivilegeSpaceSkipsRequiredEdges)
{
    // Every enumerated point must be buildable: denied edges never
    // include an edge the static call graph needs, so validation and
    // matrix resolution succeed for all of them.
    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);
    auto space = wayfinder::leastPrivilegeSpace();
    EXPECT_GE(space.size(), 5u); // at least the 5 bare partitions
    bool sawDeny = false;
    for (const ConfigPoint &p : space) {
        SafetyConfig cfg = wayfinder::toSafetyConfig(p, "libredis");
        EXPECT_NO_THROW(tc.validate(cfg));
        if (!p.deniedEdges.empty()) {
            // Image build runs the static-edge deny rejection; a
            // least-privilege point must never trip it.
            Machine mach;
            MachineScope scope(mach);
            Scheduler sched(mach);
            cfg.heapBytes = 64 * 1024;
            cfg.sharedHeapBytes = 64 * 1024;
            EXPECT_NO_THROW(tc.build(mach, sched, cfg)->shutdown());
        }
        auto required =
            wayfinder::requiredBlockEdges(p.partition, "libredis");
        for (const auto &edge : p.deniedEdges) {
            sawDeny = true;
            for (const auto &req : required)
                EXPECT_NE(edge, req);
        }
        // The matrix resolves the deny rules the point asked for.
        GateMatrix m = GateMatrix::build(cfg);
        for (const auto &[f, t] : p.deniedEdges)
            EXPECT_TRUE(m.at(f, t).deny);
    }
    EXPECT_TRUE(sawDeny); // the dimension is not degenerate

    // Denied labels render and the points order in the poset.
    for (const ConfigPoint &p : space) {
        if (p.deniedEdges.empty())
            continue;
        EXPECT_NE(wayfinder::pointLabel(p, "libredis").find("deny{"),
                  std::string::npos);
    }
}

} // namespace
} // namespace flexos
