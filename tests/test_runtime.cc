/**
 * @file
 * Runtime control-plane tests: the quiesced gate-matrix swap path
 * (no-op bit-identity, mid-crossing quiesce against a thread blocked
 * in an EPT ring RPC, pending deferred-batch flush before the epoch
 * flip, swap under a throttle stall, a multi-core swap storm) and the
 * policy controller itself (config surface, storm escalation ladder
 * with hysteresis relax, deny-witness hardening, NAPI-style batch
 * width convergence, windowed counter deltas, and the static-identity
 * pin for images with nothing adaptive).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/image.hh"
#include "core/toolchain.hh"
#include "runtime/controller.hh"

namespace flexos {
namespace {

struct RuntimeFixture : ::testing::Test
{
    RuntimeFixture()
        : scope(mach), sched(mach), reg(LibraryRegistry::standard()),
          tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

/** app (default, MPK) / sys (MPK) / att (MPK), att -> sys adaptive,
 *  att -> app denied: the controller's canonical test image. */
const char *adaptiveCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- att:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- uktime: att
boundaries:
- att -> sys: {adaptive: true}
- att -> app: {deny: true}
)";

/** MPK app calling into an EPT network VM: crossings suspend inside
 *  the ring RPC, which is what the quiesce barrier exists for. */
const char *eptCfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: vm-ept
libraries:
- libredis: app
- lwip: net
)";

// --------------------------------------------------- config surface

TEST_F(RuntimeFixture, ControllerSectionParsesAndRoundTrips)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
controller:
  epoch: 250000
  storm_threshold: 40
  calm_epochs: 5
  deny_alert: 2
  queue_high: 12
boundaries:
- app -> sys: {adaptive: true}
)");
    ASSERT_TRUE(cfg.controller.has_value());
    EXPECT_EQ(cfg.controller->epoch, 250000u);
    EXPECT_EQ(cfg.controller->stormThreshold, 40u);
    EXPECT_EQ(cfg.controller->calmEpochs, 5u);
    EXPECT_EQ(cfg.controller->denyAlert, 2u);
    EXPECT_EQ(cfg.controller->queueHigh, 12u);
    ASSERT_EQ(cfg.boundaries.size(), 1u);
    EXPECT_EQ(cfg.boundaries[0].adaptive, true);

    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.controller, cfg.controller);
    EXPECT_EQ(again.boundaries, cfg.boundaries);
    GateMatrix m = GateMatrix::build(again);
    EXPECT_TRUE(m.at(0, 1).adaptive);
    EXPECT_FALSE(m.at(1, 0).adaptive);

    // Bare section: presence alone enables the controller, defaulted.
    SafetyConfig bare = SafetyConfig::parse(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
libraries:
- libredis: app
controller:
)");
    ASSERT_TRUE(bare.controller.has_value());
    EXPECT_EQ(*bare.controller, ControllerConfig{});
}

// --------------------------------------------------- the swap path

TEST_F(RuntimeFixture, NoopSwapIsBitIdenticalToNoSwap)
{
    std::unique_ptr<Image> img = buildFrom(adaptiveCfg);
    Image::StatsSnapshot before = img->snapshotStats();
    // An identical matrix must be elided charge-free: no epoch bump,
    // no counter movement, nothing re-primed.
    EXPECT_FALSE(img->swapGateMatrix(img->gateMatrix()));
    EXPECT_EQ(img->gateMatrix().epoch(), 0u);
    EXPECT_EQ(img->snapshotStats(), before);
}

TEST_F(RuntimeFixture, SwapAppliesNewPolicyAndBumpsEpoch)
{
    std::unique_ptr<Image> img = buildFrom(adaptiveCfg);
    int att = img->compartmentIndexOf("uktime");
    int sys = img->compartmentIndexOf("uksched");

    GateMatrix next = img->gateMatrix();
    GatePolicy p = next.at(att, sys);
    p.rate = 50;
    p.rateWindow = 100000;
    p.overflow = RateOverflow::Fail;
    next.set(att, sys, p);
    EXPECT_TRUE(img->swapGateMatrix(std::move(next)));

    EXPECT_EQ(img->gateMatrix().epoch(), 1u);
    EXPECT_EQ(mach.counter("matrix.swaps"), 1u);
    EXPECT_EQ(mach.counter("matrix.epoch"), 1u);
    EXPECT_EQ(img->policyFor(att, sys).rate, 50u);
    EXPECT_EQ(img->policyFor(att, sys).overflow, RateOverflow::Fail);
    // One ack per core (single-core machine here).
    EXPECT_EQ(mach.counter("matrix.coreAcks"), mach.coreCount());
}

TEST_F(RuntimeFixture, FiberSwapQuiescesAgainstEptCrossingInFlight)
{
    std::unique_ptr<Image> img = buildFrom(eptCfg);
    int app = img->compartmentIndexOf("libredis");
    int net = img->compartmentIndexOf("lwip");

    bool bodyStarted = false, bodyDone = false;
    bool swapDone = false, swapSawBodyDone = false;
    bool swapApplied = false;

    // A: blocks mid-crossing — the body suspends on the far side of
    // the EPT ring, so the caller sits inside a backend transit.
    img->spawnIn("libredis", "caller", [&] {
        img->gate("lwip", "rx_burst", [&] {
            bodyStarted = true;
            sched.sleepNs(200000);
            bodyDone = true;
        });
    });

    // B: swaps once the crossing is provably in flight; must block on
    // the quiesce barrier until the crossing drains.
    sched.spawn("swapper", [&] {
        while (!bodyStarted)
            sched.yield();
        GateMatrix next = img->gateMatrix();
        GatePolicy p = next.at(app, net);
        p.rate = 1'000'000;
        p.rateWindow = 1'000'000;
        next.set(app, net, p);
        swapApplied = img->swapGateMatrix(std::move(next));
        swapSawBodyDone = bodyDone;
        swapDone = true;
    });

    // C: keeps gating while the swap is pending — new crossings must
    // yield to the waiting swapper instead of starving it.
    sched.spawn("prober", [&] {
        while (!swapDone) {
            img->gate("lwip", "timer_poll", [] {});
            sched.yield();
        }
    });

    sched.runUntil([&] { return swapDone; });
    EXPECT_TRUE(swapApplied);
    EXPECT_TRUE(swapSawBodyDone);
    EXPECT_EQ(img->activeCrossings(), 0);
    EXPECT_EQ(img->gateMatrix().epoch(), 1u);
    EXPECT_GE(mach.counter("matrix.quiesceWaits"), 1u);
    EXPECT_GE(mach.counter("matrix.swapYields"), 1u);
    sched.cancelAll();
}

TEST_F(RuntimeFixture, DriverSwapDrainsEptCrossingInFlight)
{
    std::unique_ptr<Image> img = buildFrom(eptCfg);
    int app = img->compartmentIndexOf("libredis");
    int net = img->compartmentIndexOf("lwip");

    bool bodyStarted = false, bodyDone = false;
    img->spawnIn("libredis", "caller", [&] {
        img->gate("lwip", "rx_burst", [&] {
            bodyStarted = true;
            sched.sleepNs(150000);
            bodyDone = true;
        });
    });
    sched.runUntil([&] { return bodyStarted; });
    ASSERT_GT(img->activeCrossings(), 0);

    // Driver context: swapGateMatrix runs the scheduler itself until
    // the transit drains, then flips.
    GateMatrix next = img->gateMatrix();
    GatePolicy p = next.at(app, net);
    p.validateReturn = true;
    next.set(app, net, p);
    EXPECT_TRUE(img->swapGateMatrix(std::move(next)));
    EXPECT_TRUE(bodyDone);
    EXPECT_EQ(img->activeCrossings(), 0);
    EXPECT_GE(mach.counter("matrix.quiesceWaits"), 1u);
    EXPECT_TRUE(img->policyFor(app, net).validateReturn);
}

TEST_F(RuntimeFixture, PendingDeferredBatchFlushesBeforeEpochFlip)
{
    std::unique_ptr<Image> img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- app -> sys: {batch: 8}
)");
    int app = img->compartmentIndexOf("libredis");
    int sys = img->compartmentIndexOf("uksched");

    int ran = 0;
    bool done = false, flushedBeforeFlip = false;
    img->spawnIn("libredis", "deferrer", [&] {
        for (int i = 0; i < 3; ++i)
            img->gateDeferred("uksched", "yield", [&] { ++ran; });
        // Still queued: the batch is narrower than its trigger width.
        EXPECT_EQ(ran, 0);
        // The swap denies the very edge the pending batch crosses: if
        // the flush ran after the flip, it would raise DeniedCrossing.
        GateMatrix next = img->gateMatrix();
        GatePolicy p = next.at(app, sys);
        p.deny = true;
        next.set(app, sys, p);
        EXPECT_TRUE(img->swapGateMatrix(std::move(next)));
        flushedBeforeFlip = ran == 3;
        EXPECT_THROW(img->gate("uksched", "yield", [] {}),
                     DeniedCrossing);
        done = true;
    });
    sched.runUntil([&] { return done; });
    EXPECT_TRUE(flushedBeforeFlip);
    EXPECT_EQ(ran, 3);
    EXPECT_EQ(img->gateMatrix().epoch(), 1u);
}

TEST_F(RuntimeFixture, SwapRelievesThrottleStall)
{
    std::unique_ptr<Image> img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
boundaries:
- app -> sys: {rate: 2, window: 1000000, overflow: stall}
)");
    int app = img->compartmentIndexOf("libredis");
    int sys = img->compartmentIndexOf("uksched");

    int crossed = 0;
    bool done = false;
    img->spawnIn("libredis", "storm", [&] {
        for (int i = 0; i < 10; ++i) {
            img->gate("uksched", "yield", [] {});
            ++crossed;
            sched.yield();
        }
        done = true;
    });

    std::uint64_t throttledAtSwap = 0;
    sched.spawn("relaxer", [&] {
        // Swap once the storm is provably deep into stall-driven
        // back-pressure (stalls advance the clock without suspending,
        // so poll on the counter, not on virtual time).
        while (mach.counter("gate.throttled") < 3)
            sched.yield();
        throttledAtSwap = mach.counter("gate.throttled");
        GateMatrix next = img->gateMatrix();
        GatePolicy p = next.at(app, sys);
        p.rate = 0;
        next.set(app, sys, p);
        EXPECT_TRUE(img->swapGateMatrix(std::move(next)));
    });

    sched.runUntil([&] { return done; });
    EXPECT_EQ(crossed, 10);
    EXPECT_GE(throttledAtSwap, 1u);
    // Un-rated edge after the swap: not a single further throttle.
    EXPECT_EQ(mach.counter("gate.throttled"), throttledAtSwap);
    sched.cancelAll();
}

TEST(RuntimeSmp, SwapStormAcrossCores)
{
    Machine mach(TimingModel{}, 4);
    MachineScope scope(mach);
    Scheduler sched(mach);
    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);
    SafetyConfig cfg = SafetyConfig::parse(adaptiveCfg);
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    std::unique_ptr<Image> img = tc.build(mach, sched, cfg);
    int att = img->compartmentIndexOf("uktime");
    int sys = img->compartmentIndexOf("uksched");

    // Three storms pinned to three cores, all hammering the same
    // boundary while the driver flips the matrix ten times.
    int finished = 0;
    int crossed[3] = {0, 0, 0};
    for (int c = 0; c < 3; ++c) {
        Thread *t = img->spawnIn("uktime", "storm" + std::to_string(c),
                                 [&, c] {
                                     for (int i = 0; i < 500; ++i) {
                                         img->gate("uksched", "yield",
                                                   [] {});
                                         ++crossed[c];
                                         if (i % 16 == 0)
                                             sched.yield();
                                     }
                                     ++finished;
                                 });
        sched.pin(t, c + 1);
    }

    for (int k = 0; k < 10; ++k) {
        GateMatrix next = img->gateMatrix();
        GatePolicy p = next.at(att, sys);
        // Budget far above the storm: the swap machinery is under
        // test here, not the throttle. (The un-rated baseline means
        // the first flip must be the rated one to be a real change.)
        p.rate = (k % 2) ? 0 : 500000;
        p.rateWindow = 1'000'000;
        next.set(att, sys, p);
        ASSERT_TRUE(img->swapGateMatrix(std::move(next)));
    }
    sched.runUntil([&] { return finished == 3; });

    EXPECT_EQ(crossed[0] + crossed[1] + crossed[2], 1500);
    EXPECT_EQ(img->gateMatrix().epoch(), 10u);
    EXPECT_EQ(mach.counter("matrix.swaps"), 10u);
    // Every swap acknowledged on every core.
    EXPECT_EQ(mach.counter("matrix.coreAcks"), 10u * mach.coreCount());
    EXPECT_EQ(img->activeCrossings(), 0);
}

// ------------------------------------------- windowed counter reads

TEST_F(RuntimeFixture, SnapshotStatsDeltasKeepOnlyMovedKeys)
{
    std::unique_ptr<Image> img = buildFrom(adaptiveCfg);
    mach.bump("test.a", 5);
    mach.bump("test.b", 2);
    Image::StatsSnapshot before = img->snapshotStats();
    mach.bump("test.a", 3);
    mach.bump("test.c", 7);
    Image::StatsSnapshot delta =
        Image::statsDelta(before, img->snapshotStats());
    EXPECT_EQ(delta.count("test.b"), 0u); // unmoved: not in the delta
    EXPECT_EQ(delta.at("test.a"), 3u);    // windowed, not the total
    EXPECT_EQ(delta.at("test.c"), 7u);    // new keys count from zero
}

// --------------------------------------------------- the controller

/** Storm the att -> sys edge: `rounds` bursts of 200 crossings with a
 *  window-refilling sleep between bursts; throttle failures are
 *  absorbed so the storm survives `overflow: fail`. */
void
stormRounds(Image &img, Scheduler &sched, int rounds)
{
    bool done = false;
    img.spawnIn("uktime", "storm", [&] {
        for (int r = 0; r < rounds; ++r) {
            for (int i = 0; i < 200; ++i) {
                try {
                    img.gate("uksched", "yield", [] {});
                } catch (const ThrottledCrossing &) {
                }
            }
            sched.sleepNs(110000);
        }
        done = true;
    });
    sched.runUntil([&] { return done; });
}

TEST_F(RuntimeFixture, ControllerEscalatesStormAndRelaxesWhenCalm)
{
    std::unique_ptr<Image> img = buildFrom(adaptiveCfg);
    int att = img->compartmentIndexOf("uktime");
    int sys = img->compartmentIndexOf("uksched");
    GatePolicy base = img->policyFor(att, sys);

    ControllerConfig cc;
    cc.epoch = 100000;
    cc.stormThreshold = 50;
    cc.calmEpochs = 2;
    PolicyController ctl(*img, cc);

    // Level 1: a crossing budget appears, back-pressure only.
    stormRounds(*img, sched, 1);
    EXPECT_TRUE(ctl.step());
    GatePolicy p = img->policyFor(att, sys);
    EXPECT_EQ(p.rate, cc.stormThreshold);
    EXPECT_EQ(p.rateWindow, cc.epoch);
    EXPECT_EQ(p.overflow, RateOverflow::Stall);

    // Level 2: the storm rode through the stall, so fail fast.
    stormRounds(*img, sched, 1);
    EXPECT_TRUE(ctl.step());
    EXPECT_EQ(img->policyFor(att, sys).overflow, RateOverflow::Fail);

    // Level 3: persistent storm marks the edge attacker-facing.
    stormRounds(*img, sched, 3);
    EXPECT_TRUE(ctl.step());
    p = img->policyFor(att, sys);
    EXPECT_TRUE(p.validateEntry);
    EXPECT_TRUE(p.validateReturn);

    // Hysteresis: one quiet epoch relaxes nothing...
    EXPECT_FALSE(ctl.step());
    EXPECT_TRUE(img->policyFor(att, sys).validateEntry);
    // ...but each full calm streak steps one level back down, until
    // the edge is bit-identical to its configured baseline.
    for (int i = 0; i < 5; ++i)
        ctl.step();
    EXPECT_TRUE(img->policyFor(att, sys) == base);
    EXPECT_EQ(mach.counter("controller.relaxes"), 3u);
    EXPECT_EQ(mach.counter("controller.tightens"), 3u);
    EXPECT_GE(mach.counter("matrix.swaps"), 6u);
    EXPECT_EQ(ctl.epochs(), 9u);
}

TEST_F(RuntimeFixture, ControllerDenyWitnessHardensOutgoingEdges)
{
    // att -> sys starts on the light gate so the deny-witness
    // hardening (DSS + validated entry + scrubbed returns) is a
    // visible policy change.
    std::unique_ptr<Image> img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- att:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- uktime: att
boundaries:
- att -> sys: {adaptive: true, gate: light}
- att -> app: {deny: true}
)");
    int att = img->compartmentIndexOf("uktime");
    int sys = img->compartmentIndexOf("uksched");
    GatePolicy base = img->policyFor(att, sys);
    EXPECT_EQ(base.flavor, MpkGateFlavor::Light);

    ControllerConfig cc;
    cc.epoch = 100000;
    cc.calmEpochs = 2;
    PolicyController ctl(*img, cc);

    bool done = false, denied = false;
    img->spawnIn("uktime", "prober", [&] {
        try {
            img->gate("libredis", "redis_handle_conn", [] {});
        } catch (const DeniedCrossing &) {
            denied = true;
        }
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(denied);

    EXPECT_TRUE(ctl.step());
    EXPECT_EQ(mach.counter("controller.alerts"), 1u);
    GatePolicy p = img->policyFor(att, sys);
    EXPECT_EQ(p.flavor, MpkGateFlavor::Dss);
    EXPECT_TRUE(p.validateEntry);
    EXPECT_TRUE(p.scrubReturn);
    // The denied edge itself is never touched.
    EXPECT_TRUE(img->policyFor(att, img->compartmentIndexOf("libredis"))
                    .deny);

    // A calm streak un-hardens back to the configured light gate.
    ctl.step();
    ctl.step();
    EXPECT_TRUE(img->policyFor(att, sys) == base);
}

TEST_F(RuntimeFixture, ControllerBatchWidthConvergesWithBacklog)
{
    std::unique_ptr<Image> img = buildFrom(adaptiveCfg);
    int att = img->compartmentIndexOf("uktime");
    int sys = img->compartmentIndexOf("uksched");

    ControllerConfig cc;
    cc.epoch = 100000;
    cc.queueHigh = 8;
    PolicyController ctl(*img, cc);
    std::uint64_t depth = 20;
    ctl.queueDepthProbe = [&] { return depth; };

    // Sustained backlog: width doubles per epoch up to the cap.
    std::uint64_t expect[] = {2, 4, 8, 16};
    for (std::uint64_t want : expect) {
        EXPECT_TRUE(ctl.step());
        EXPECT_EQ(img->policyFor(att, sys).batch, want);
    }
    EXPECT_FALSE(ctl.step()); // capped: nothing changes, no swap
    EXPECT_EQ(img->policyFor(att, sys).batch,
              PolicyController::maxBatchWidth);
    EXPECT_EQ(mach.counter("gate.batchWidthChanges"), 4u);

    // Drained queue: width halves back to the configured floor.
    depth = 0;
    std::uint64_t narrow[] = {8, 4, 2, 1};
    for (std::uint64_t want : narrow) {
        EXPECT_TRUE(ctl.step());
        EXPECT_EQ(img->policyFor(att, sys).batch, want);
    }
    EXPECT_FALSE(ctl.step()); // at the floor: stable
    EXPECT_EQ(mach.counter("gate.batchWidthChanges"), 8u);
    EXPECT_EQ(mach.counter("matrix.swaps"), 8u);
}

TEST_F(RuntimeFixture, ControllerWithNothingAdaptiveIsStaticIdentity)
{
    // No `adaptive: true` anywhere: the controller enrolls nothing,
    // and no amount of storming moves the matrix off its build state.
    std::unique_ptr<Image> img = buildFrom(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- att:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- uktime: att
)");
    GateMatrix built = img->gateMatrix();
    PolicyController ctl(*img, ControllerConfig{});

    stormRounds(*img, sched, 2);
    EXPECT_FALSE(ctl.step());
    EXPECT_FALSE(ctl.step());
    EXPECT_EQ(mach.counter("matrix.swaps"), 0u);
    EXPECT_EQ(img->gateMatrix().epoch(), 0u);
    EXPECT_TRUE(img->gateMatrix() == built);
}

} // namespace
} // namespace flexos
