/**
 * @file
 * Tests for the FlexOS core: config parsing, toolchain validation and
 * transformation, gate semantics across every backend, isolation
 * enforcement, DSS, and the hardening mechanisms (including failure
 * injection proving they detect planted bugs).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/config.hh"
#include "core/dss.hh"
#include "core/image.hh"
#include "core/toolchain.hh"

namespace flexos {
namespace {

const char *twoCompMpk = R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, kasan]
libraries:
- libredis: comp1
- newlib: comp1
- uksched: comp1
- lwip: comp2
)";

// ---------------------------------------------------------------- config

TEST(Config, ParsesPaperExample)
{
    SafetyConfig cfg = SafetyConfig::parse(twoCompMpk);
    ASSERT_EQ(cfg.compartments.size(), 2u);
    EXPECT_EQ(cfg.compartments[0].name, "comp1");
    EXPECT_TRUE(cfg.compartments[0].isDefault);
    EXPECT_EQ(cfg.compartments[0].mechanism, Mechanism::IntelMpk);
    EXPECT_FALSE(cfg.compartments[1].isDefault);
    EXPECT_TRUE(cfg.compartments[1].hardenedWith(Hardening::Cfi));
    EXPECT_TRUE(cfg.compartments[1].hardenedWith(Hardening::Kasan));
    EXPECT_FALSE(cfg.compartments[1].hardenedWith(Hardening::Ubsan));
    ASSERT_EQ(cfg.libraries.size(), 4u);
    EXPECT_EQ(cfg.libraries[3].first, "lwip");
    EXPECT_EQ(cfg.libraries[3].second, "comp2");
}

TEST(Config, ParsesPerLibraryHardening)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- c1:
    mechanism: none
    default: True
libraries:
- libredis: c1 [kasan, ubsan]
- lwip: c1
)");
    ASSERT_TRUE(cfg.libHardening.count("libredis"));
    EXPECT_EQ(cfg.libHardening.at("libredis").size(), 2u);
    EXPECT_FALSE(cfg.libHardening.count("lwip"));
}

TEST(Config, RoundTripsThroughText)
{
    SafetyConfig cfg = SafetyConfig::parse(twoCompMpk);
    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.compartments.size(), cfg.compartments.size());
    EXPECT_EQ(again.libraries, cfg.libraries);
    EXPECT_EQ(again.compartments[1].hardening,
              cfg.compartments[1].hardening);
}

TEST(Config, RejectsUnknownMechanism)
{
    EXPECT_THROW(SafetyConfig::parse(R"(
# lint-skip: intentionally invalid
compartments:
- c1:
    mechanism: sgx-enclave
    default: True
libraries:
- lwip: c1
)"),
                 FatalError);
}

TEST(Config, RejectsUnknownHardening)
{
    EXPECT_THROW(SafetyConfig::parse(R"(
# lint-skip: intentionally invalid
compartments:
- c1:
    mechanism: none
    default: True
    hardening: [voodoo]
libraries:
- lwip: c1
)"),
                 FatalError);
}

TEST(Config, RejectsGarbage)
{
    EXPECT_THROW(SafetyConfig::parse("what even is this"), FatalError);
    EXPECT_THROW(SafetyConfig::parse(""), FatalError);
}

TEST(Config, CommentsAndBlankLinesIgnored)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
# the trusted side
compartments:

- c1:
    mechanism: intel-mpk   # keys!
    default: True
libraries:
- lwip: c1
)");
    EXPECT_EQ(cfg.compartments.size(), 1u);
}

// ------------------------------------------------------------- registry

TEST(Registry, StandardHasPaperComponents)
{
    LibraryRegistry reg = LibraryRegistry::standard();
    for (const char *lib :
         {"lwip", "uksched", "vfscore", "uktime", "newlib", "libredis",
          "libnginx", "libsqlite", "libiperf"})
        EXPECT_TRUE(reg.contains(lib)) << lib;
    EXPECT_TRUE(reg.get("ukalloc").tcb);
    EXPECT_TRUE(reg.get("ukboot").tcb);
    // Table 1 metadata spot checks.
    EXPECT_EQ(reg.get("lwip").sharedVars, 23);
    EXPECT_EQ(reg.get("uktime").sharedVars, 0);
    EXPECT_EQ(reg.get("libnginx").sharedVars, 36);
}

TEST(Registry, EntryPointLookup)
{
    LibraryRegistry reg = LibraryRegistry::standard();
    EXPECT_TRUE(reg.isEntryPoint("lwip", "recv"));
    EXPECT_FALSE(reg.isEntryPoint("lwip", "internal_tcp_input"));
    EXPECT_THROW(reg.get("nosuchlib"), FatalError);
}

// ------------------------------------------------------------ toolchain

struct CoreFixture : ::testing::Test
{
    CoreFixture() : scope(mach), sched(mach), reg(LibraryRegistry::standard()),
                    tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20; // keep tests light
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

TEST_F(CoreFixture, BuildProducesGatePlanAndLinkerScript)
{
    auto img = buildFrom(twoCompMpk);
    const BuildReport &rep = tc.report();
    EXPECT_GT(rep.gatesInserted, 0);
    EXPECT_GT(rep.annotationsReplaced, 0);
    EXPECT_NE(rep.linkerScript.find(".data.comp2"), std::string::npos);
    EXPECT_NE(rep.linkerScript.find("shared"), std::string::npos);
    // Backends are flavour-agnostic (the flavour is a per-boundary
    // GatePolicy); the gate plan still names the resolved policy.
    EXPECT_EQ(rep.backendName, std::string("intel-mpk"));
    bool policyNamed = false;
    for (const std::string &t : rep.transformations)
        if (t.find("intel-mpk(dss) gate") != std::string::npos)
            policyNamed = true;
    EXPECT_TRUE(policyNamed);

    // lwip -> uksched crosses compartments: a gate must be planned.
    bool found = false;
    for (const std::string &t : rep.transformations)
        if (t.find("lwip: flexos_gate(uksched") != std::string::npos &&
            t.find("gate [") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(CoreFixture, AnnotationCountMatchesTable1)
{
    auto img = buildFrom(twoCompMpk);
    // libredis 16 + uksched 5 + lwip 23 + newlib 0 = 44.
    EXPECT_EQ(tc.report().annotationsReplaced, 44);
}

TEST_F(CoreFixture, ValidateAcceptsMixedMechanisms)
{
    // The mechanism is a per-boundary knob: an image may mix MPK and
    // EPT compartments, each boundary enforced by its own backend.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: vm-ept
libraries:
- lwip: c2
)");
    EXPECT_NO_THROW(tc.validate(cfg));
}

TEST_F(CoreFixture, MixedMpkBudgetCountsOnlyKeyedCompartments)
{
    auto make = [](int mpk, int ept) {
        std::string text = "compartments:\n";
        for (int i = 0; i < mpk; ++i) {
            text += "- m" + std::to_string(i) + ":\n";
            text += "    mechanism: intel-mpk\n";
            if (i == 0)
                text += "    default: True\n";
        }
        for (int i = 0; i < ept; ++i) {
            text += "- e" + std::to_string(i) + ":\n";
            text += "    mechanism: vm-ept\n";
        }
        text += "libraries:\n- lwip: m0\n";
        return SafetyConfig::parse(text);
    };
    // EPT compartments don't tighten the MPK budget: 14 MPK + 1 EPT is
    // as legal as 15 pure-MPK compartments.
    EXPECT_NO_THROW(tc.validate(make(14, 1)));
    EXPECT_NO_THROW(tc.validate(make(15, 0)));
    // A 16th MPK compartment exhausts the key budget.
    EXPECT_THROW(tc.validate(make(16, 0)), FatalError);
    // Key virtualization: EPT compartments are VM-private, not
    // key-tagged, so they lift the old 15-*total* cap — a mixed image
    // may grow well past 15 compartments as long as at most 15 of
    // them consume keys.
    EXPECT_NO_THROW(tc.validate(make(15, 1)));
    EXPECT_NO_THROW(tc.validate(make(15, 10)));
    EXPECT_THROW(tc.validate(make(16, 10)), FatalError);
}

TEST_F(CoreFixture, ValidateRejectsMissingDefault)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
# lint-skip: intentionally invalid (no default compartment)
compartments:
- c1:
    mechanism: intel-mpk
libraries:
- lwip: c1
)");
    EXPECT_THROW(tc.validate(cfg), FatalError);
}

TEST_F(CoreFixture, ValidateRejectsDoubleAssignment)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
# lint-skip: intentionally invalid (double assignment)
compartments:
- c1:
    mechanism: intel-mpk
    default: True
libraries:
- lwip: c1
- lwip: c1
)");
    EXPECT_THROW(tc.validate(cfg), FatalError);
}

TEST_F(CoreFixture, ValidateRejectsUnknownLibraryOrCompartment)
{
    EXPECT_THROW(buildFrom(R"(
# lint-skip: intentionally invalid (unknown library)
compartments:
- c1:
    mechanism: intel-mpk
    default: True
libraries:
- libquantum: c1
)"),
                 FatalError);
    EXPECT_THROW(buildFrom(R"(
# lint-skip: intentionally invalid (unknown compartment)
compartments:
- c1:
    mechanism: intel-mpk
    default: True
libraries:
- lwip: c9
)"),
                 FatalError);
}

TEST_F(CoreFixture, ValidateRejectsTooManyMpkCompartments)
{
    std::string text = "compartments:\n";
    for (int i = 0; i < 16; ++i) {
        text += "- c" + std::to_string(i) + ":\n";
        text += "    mechanism: intel-mpk\n";
        if (i == 0)
            text += "    default: True\n";
    }
    text += "libraries:\n- lwip: c0\n";
    EXPECT_THROW(tc.validate(SafetyConfig::parse(text)), FatalError);
}

TEST_F(CoreFixture, ValidateRejectsTcbOutsideTrustedUnderMpk)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
# lint-skip: intentionally invalid (TCB outside trusted compartment)
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: intel-mpk
libraries:
- ukalloc: c2
)");
    EXPECT_THROW(tc.validate(cfg), FatalError);
}

// ----------------------------------------------------------- gates/MPK

TEST_F(CoreFixture, SameCompartmentGateIsPlainCall)
{
    auto img = buildFrom(twoCompMpk);
    bool ran = false;
    Cycles before = mach.cycles();
    img->spawnIn("libredis", "t", [&] {
        img->gate("newlib", "memcpy", [&] { ran = true; });
    });
    sched.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(mach.counter("gate.direct"), 1u);
    EXPECT_EQ(mach.counter("gate.mpk.dss"), 0u);
    // Cost: two context switches + one function call; no gate charges.
    EXPECT_LE(mach.cycles() - before,
              2 * mach.timing.contextSwitch + mach.timing.functionCall +
                  2);
}

TEST_F(CoreFixture, CrossCompartmentMpkGateChargesAndSwitchesDomain)
{
    auto img = buildFrom(twoCompMpk);
    Pkru inside;
    int compInside = -1;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            inside = mach.pkru;
            compInside = img->currentCompartment();
        });
        // Restored after the gate returns.
        EXPECT_EQ(img->currentCompartment(), 0);
    });
    sched.run();
    EXPECT_EQ(compInside, 1);
    EXPECT_TRUE(inside.permits(1, AccessType::Write));   // own key
    EXPECT_TRUE(inside.permits(sharedProtKey, AccessType::Write));
    EXPECT_FALSE(inside.permits(0, AccessType::Read));   // caller's key
    EXPECT_EQ(mach.counter("gate.mpk.dss"), 1u);
}

TEST_F(CoreFixture, GateReturnsValues)
{
    auto img = buildFrom(twoCompMpk);
    int got = 0;
    img->spawnIn("libredis", "t", [&] {
        got = img->gate("lwip", "recv", [&] { return 41 + 1; });
    });
    sched.run();
    EXPECT_EQ(got, 42);
}

TEST_F(CoreFixture, IsolationBlocksCrossCompartmentHeapAccess)
{
    auto img = buildFrom(twoCompMpk);
    // Allocate in lwip's private heap, then try to read it from redis'
    // compartment through the checked-access path: must fault.
    int *secret = nullptr;
    bool faulted = false;
    Thread *t = img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            secret = static_cast<int *>(img->heapOf("lwip").alloc(16));
            img->store(secret, 1234);
        });
        try {
            img->load(secret); // from comp1: lwip's key is denied
        } catch (const ProtectionFault &) {
            faulted = true;
        }
    });
    sched.run();
    ASSERT_FALSE(t->failed()) << t->error();
    EXPECT_TRUE(faulted);
}

TEST_F(CoreFixture, SharedHeapReadableFromBothCompartments)
{
    auto img = buildFrom(twoCompMpk);
    int seen = 0;
    img->spawnIn("libredis", "t", [&] {
        auto *shared = static_cast<int *>(img->sharedAlloc(16));
        img->store(shared, 77);
        img->gate("lwip", "recv",
                  [&] { seen = img->load(shared); });
        img->sharedFree(shared);
    });
    sched.run();
    EXPECT_EQ(seen, 77);
}

TEST_F(CoreFixture, LightGateCheaperThanDssGate)
{
    SafetyConfig cfg = SafetyConfig::parse(twoCompMpk);
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;

    auto runOnce = [&](MpkGateFlavor flavor) {
        Machine m2;
        MachineScope s2(m2);
        Scheduler sched2(m2);
        SafetyConfig c2 = cfg;
        BoundaryRule rule;
        rule.from = "*";
        rule.to = "*";
        rule.flavor = flavor;
        c2.boundaries.push_back(rule);
        Toolchain tc2(reg);
        auto img = tc2.build(m2, sched2, c2);
        Cycles before = m2.cycles();
        img->spawnIn("libredis", "t", [&] {
            for (int i = 0; i < 100; ++i)
                img->gate("lwip", "recv", [] {});
        });
        sched2.run();
        return m2.cycles() - before;
    };

    EXPECT_LT(runOnce(MpkGateFlavor::Light),
              runOnce(MpkGateFlavor::Dss));
}

// ----------------------------------------------------------- gates/EPT

const char *twoCompEpt = R"(
compartments:
- comp1:
    mechanism: vm-ept
    default: True
- comp2:
    mechanism: vm-ept
libraries:
- libredis: comp1
- newlib: comp1
- uksched: comp1
- lwip: comp2
)";

TEST_F(CoreFixture, EptGateExecutesViaRpcServer)
{
    auto img = buildFrom(twoCompEpt);
    int result = 0;
    std::string serverThread;
    img->spawnIn("libredis", "caller", [&] {
        result = img->gate("lwip", "recv", [&] {
            serverThread = sched.current()->name();
            return 7;
        });
    });
    sched.runUntil([&] { return result == 7; });
    EXPECT_EQ(result, 7);
    // The body ran on an RPC server fiber of VM 1, not on the caller.
    EXPECT_NE(serverThread.find("ept-vm1"), std::string::npos);
    EXPECT_GE(mach.counter("gate.ept"), 1u);
    img->shutdown();
}

TEST_F(CoreFixture, EptRejectsIllegalEntryPoint)
{
    auto img = buildFrom(twoCompEpt);
    bool rejected = false;
    img->spawnIn("libredis", "caller", [&] {
        try {
            img->gate("lwip", "not_an_entry", [] {});
        } catch (const CfiViolation &) {
            rejected = true;
        }
    });
    sched.runUntil([&] { return rejected; });
    EXPECT_TRUE(rejected);
    img->shutdown();
}

TEST_F(CoreFixture, EptReplicatesTcb)
{
    auto img = buildFrom(twoCompEpt);
    // ukalloc is TCB: a call from lwip's VM stays local (each VM has a
    // self-contained kernel, paper 4.2) — no RPC crossing.
    std::uint64_t before = mach.counter("gate.ept");
    bool done = false;
    img->spawnIn("lwip", "t", [&] {
        img->gate("ukalloc", "malloc", [] {});
        done = true;
    });
    sched.runUntil([&] { return done; });
    EXPECT_EQ(mach.counter("gate.ept"), before);
    img->shutdown();
}

TEST_F(CoreFixture, EptGateCostsMoreThanMpk)
{
    auto costOf = [&](const char *text) {
        Machine m2;
        MachineScope s2(m2);
        Scheduler sched2(m2);
        Toolchain tc2(reg);
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        auto img = tc2.build(m2, sched2, cfg);
        bool done = false;
        Cycles before = m2.cycles();
        img->spawnIn("libredis", "t", [&] {
            for (int i = 0; i < 50; ++i)
                img->gate("lwip", "recv", [] {});
            done = true;
        });
        sched2.runUntil([&] { return done; });
        Cycles cost = m2.cycles() - before;
        img->shutdown();
        return cost;
    };
    EXPECT_GT(costOf(twoCompEpt), costOf(twoCompMpk));
}

// ------------------------------------------------------------ hardening

TEST_F(CoreFixture, KasanDetectsHeapOverflow)
{
    auto img = buildFrom(twoCompMpk); // comp2 has kasan
    bool caught = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            auto *buf =
                static_cast<char *>(img->heapOf("lwip").alloc(32));
            try {
                // One past the end: lands in the redzone.
                char c;
                img->currentHardening().checkAccess(buf + 32, 1);
                (void)c;
            } catch (const KasanViolation &) {
                caught = true;
            }
            img->heapOf("lwip").free(buf);
        });
    });
    sched.run();
    EXPECT_TRUE(caught);
}

TEST_F(CoreFixture, KasanDetectsUseAfterFree)
{
    auto img = buildFrom(twoCompMpk);
    bool caught = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            auto *buf =
                static_cast<char *>(img->heapOf("lwip").alloc(32));
            img->heapOf("lwip").free(buf);
            try {
                img->currentHardening().checkAccess(buf, 1);
            } catch (const KasanViolation &) {
                caught = true;
            }
        });
    });
    sched.run();
    EXPECT_TRUE(caught);
}

TEST_F(CoreFixture, KasanDetectsDoubleFree)
{
    auto img = buildFrom(twoCompMpk);
    bool caught = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            auto *buf = img->heapOf("lwip").alloc(8);
            img->heapOf("lwip").free(buf);
            try {
                img->heapOf("lwip").free(buf);
            } catch (const KasanViolation &) {
                caught = true;
            }
        });
    });
    sched.run();
    EXPECT_TRUE(caught);
}

TEST_F(CoreFixture, UnhardenedCompartmentSkipsKasan)
{
    auto img = buildFrom(twoCompMpk); // comp1 has no hardening
    bool anyThrow = false;
    img->spawnIn("libredis", "t", [&] {
        auto *buf =
            static_cast<char *>(img->heapOf("libredis").alloc(32));
        try {
            img->currentHardening().checkAccess(buf + 33, 1);
        } catch (const HardeningViolation &) {
            anyThrow = true;
        }
        img->heapOf("libredis").free(buf);
    });
    sched.run();
    EXPECT_FALSE(anyThrow);
}

TEST_F(CoreFixture, UbsanChecksArithmetic)
{
    EXPECT_EQ(ubsan::addChecked(2, 3), 5);
    EXPECT_THROW(ubsan::addChecked(INT32_MAX, 1), UbsanViolation);
    EXPECT_THROW(ubsan::mulChecked(INT32_MAX / 2, 3), UbsanViolation);
    EXPECT_THROW(ubsan::subChecked(INT32_MIN, 1), UbsanViolation);
    EXPECT_EQ(ubsan::shlChecked(1u, 4), 16u);
    EXPECT_THROW(ubsan::shlChecked(1u, 40), UbsanViolation);
    EXPECT_EQ(ubsan::indexChecked(3, 4), 3u);
    EXPECT_THROW(ubsan::indexChecked(4, 4), UbsanViolation);
}

TEST_F(CoreFixture, CfiGateRejectsNonEntryPoint)
{
    auto img = buildFrom(twoCompMpk); // comp2 (lwip) has cfi
    bool rejected = false;
    img->spawnIn("libredis", "t", [&] {
        try {
            img->gate("lwip", "secret_internal_fn", [] {});
        } catch (const CfiViolation &) {
            rejected = true;
        }
    });
    sched.run();
    EXPECT_TRUE(rejected);
}

TEST_F(CoreFixture, CfiRegistryValidatesIndirectCalls)
{
    CfiRegistry reg2;
    auto fn = +[] {};
    reg2.registerTarget(reinterpret_cast<const void *>(fn), "handler");
    EXPECT_NO_THROW(
        reg2.checkCall(reinterpret_cast<const void *>(fn)));
    int x;
    EXPECT_THROW(reg2.checkCall(&x), CfiViolation);
}

TEST_F(CoreFixture, HardeningMultipliersStack)
{
    TimingModel tm;
    double none = hardeningMultiplier({}, tm);
    double sp = hardeningMultiplier({Hardening::StackProtector}, tm);
    double all = hardeningMultiplier({Hardening::StackProtector,
                                      Hardening::Ubsan,
                                      Hardening::Kasan},
                                     tm);
    EXPECT_DOUBLE_EQ(none, 1.0);
    EXPECT_GT(sp, 1.0);
    EXPECT_GT(all, sp);
    EXPECT_NEAR(all, 2.5, 0.01); // the Figure 6 bundle
}

TEST_F(CoreFixture, HardenedComponentWorkIsTaxed)
{
    auto img = buildFrom(twoCompMpk); // lwip hardened with kasan+cfi
    Cycles plainCost = 0, hardenedCost = 0;
    img->spawnIn("libredis", "t", [&] {
        Cycles a = mach.cycles();
        img->gate("newlib", "memcpy", [&] { consumeCycles(1000); });
        Cycles b = mach.cycles();
        img->gate("lwip", "recv", [&] { consumeCycles(1000); });
        Cycles c = mach.cycles();
        plainCost = b - a;
        hardenedCost = c - b;
    });
    sched.run();
    EXPECT_GT(hardenedCost, plainCost);
}

// ------------------------------------------------------------------ DSS

const char *dssConfig = R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libredis: comp1
- lwip: comp2
)";

TEST_F(CoreFixture, DssShadowIsStackSizeOffset)
{
    auto img = buildFrom(dssConfig);
    img->spawnIn("libredis", "t", [&] {
        DssFrame frame(*img);
        int *x = frame.var<int>();
        int *sh = frame.shadow(x);
        EXPECT_EQ(reinterpret_cast<char *>(sh) -
                      reinterpret_cast<char *>(x),
                  static_cast<long>(SimStack::stackBytes));
    });
    sched.run();
}

TEST_F(CoreFixture, DssShadowSharedAcrossCompartments)
{
    auto img = buildFrom(dssConfig);
    int seen = 0;
    bool privFaulted = false;
    img->spawnIn("libredis", "t", [&] {
        DssFrame frame(*img);
        int *x = frame.var<int>();
        int *sh = frame.shadow(x);
        img->store(sh, 99); // write through the shadow (shared domain)
        img->gate("lwip", "recv", [&] {
            seen = img->load(sh); // callee reads the shadow: allowed
            try {
                img->load(x); // the private half: denied
            } catch (const ProtectionFault &) {
                privFaulted = true;
            }
        });
    });
    sched.run();
    EXPECT_EQ(seen, 99);
    EXPECT_TRUE(privFaulted);
}

TEST_F(CoreFixture, DssAllocationIsStackSpeed)
{
    auto img = buildFrom(dssConfig);
    Cycles cost = 0;
    img->spawnIn("libredis", "t", [&] {
        Cycles before = mach.cycles();
        DssFrame frame(*img);
        frame.var<int>();
        cost = mach.cycles() - before;
    });
    sched.run();
    EXPECT_LE(cost, 4u); // constant, ~2 cycles (Figure 11a)
}

TEST_F(CoreFixture, HeapStrategyUsesSharedHeap)
{
    SafetyConfig cfg = SafetyConfig::parse(dssConfig);
    cfg.stackSharing = StackSharing::Heap;
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    auto img = tc.build(mach, sched, cfg);
    img->spawnIn("libredis", "t", [&] {
        std::uint64_t before = img->sharedHeap().stats().allocs;
        DssFrame frame(*img);
        int *x = frame.var<int>();
        EXPECT_EQ(frame.shadow(x), x); // already shared memory
        EXPECT_EQ(img->sharedHeap().stats().allocs, before + 1);
    });
    sched.run();
}

TEST_F(CoreFixture, FramesNestAndUnwind)
{
    auto img = buildFrom(dssConfig);
    img->spawnIn("libredis", "t", [&] {
        SimStack &s = img->simStackFor(sched.current()->id(), 0);
        std::size_t top0 = s.top;
        {
            DssFrame f1(*img);
            f1.var<int>();
            {
                DssFrame f2(*img);
                f2.var<double>();
                EXPECT_GT(s.top, top0);
            }
        }
        EXPECT_EQ(s.top, top0);
    });
    sched.run();
}

TEST_F(CoreFixture, StackProtectorDetectsSmashedCanary)
{
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
    hardening: [stack-protector]
libraries:
- libredis: comp1
)");
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    auto img = tc.build(mach, sched, cfg);
    bool caught = false;
    img->spawnIn("libredis", "t", [&] {
        try {
            DssFrame frame(*img);
            auto *buf = static_cast<char *>(frame.alloc(16));
            // Plant a classic stack smash: write backwards over the
            // canary that precedes this buffer.
            std::memset(buf - 16, 0x41, 32);
        } catch (const CanaryViolation &) {
            caught = true;
        }
    });
    sched.run();
    EXPECT_TRUE(caught);
}

// ------------------------------------------------------------ mechanics

TEST_F(CoreFixture, NoneBackendSingleDomainHasNoIsolation)
{
    auto img = buildFrom(R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libredis: all
- lwip: all
- uksched: all
- newlib: all
)");
    // Cross-"compartment" data access is fine: one domain.
    int seen = 0;
    img->spawnIn("libredis", "t", [&] {
        auto *p = static_cast<int *>(img->heapOf("lwip").alloc(8));
        img->store(p, 5);
        seen = img->load(p);
    });
    sched.run();
    EXPECT_EQ(seen, 5);
    EXPECT_EQ(mach.counter("gate.mpk.dss"), 0u);
}

TEST_F(CoreFixture, BaselineMechanismsHaveOrderedGateCosts)
{
    auto gateCost = [&](const char *mech) {
        Machine m2;
        MachineScope s2(m2);
        Scheduler sched2(m2);
        Toolchain tc2(reg);
        std::string text = std::string(R"(
compartments:
- c1:
    mechanism: )") + mech + R"(
    default: True
- c2:
    mechanism: )" + mech + R"(
libraries:
- libsqlite: c1
- vfscore: c2
)";
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        auto img = tc2.build(m2, sched2, cfg);
        Cycles before = m2.cycles();
        img->spawnIn("libsqlite", "t", [&] {
            for (int i = 0; i < 20; ++i)
                img->gate("vfscore", "write", [] {});
        });
        sched2.run();
        return m2.cycles() - before;
    };

    Cycles mpk = gateCost("intel-mpk");
    Cycles linux = gateCost("linux-pt");
    Cycles sel4 = gateCost("sel4-ipc");
    Cycles cubicle = gateCost("cubicle-mpk");
    EXPECT_LT(mpk, linux);     // MPK gates beat syscalls
    EXPECT_LT(linux, sel4);    // syscall beats microkernel IPC
    EXPECT_LT(sel4, cubicle);  // pkey_mprotect is the worst (6.4)
}

TEST_F(CoreFixture, GateExceptionRestoresCallerDomain)
{
    auto img = buildFrom(twoCompMpk);
    img->spawnIn("libredis", "t", [&] {
        Pkru before = mach.pkru;
        try {
            img->gate("lwip", "recv", [&]() -> void {
                throw std::runtime_error("callee exploded");
            });
        } catch (const std::runtime_error &) {
        }
        EXPECT_EQ(img->currentCompartment(), 0);
        EXPECT_EQ(mach.pkru, before);
    });
    sched.run();
}

TEST_F(CoreFixture, CrossingsAreCounted)
{
    auto img = buildFrom(twoCompMpk);
    img->spawnIn("libredis", "t", [&] {
        for (int i = 0; i < 3; ++i)
            img->gate("lwip", "recv", [] {});
    });
    sched.run();
    auto it = img->gateCrossings().find({0, 1});
    ASSERT_NE(it, img->gateCrossings().end());
    EXPECT_EQ(it->second, 3u);
}

} // namespace
} // namespace flexos
