/**
 * @file
 * Whole-image integration tests: complete deployments (machine + image
 * + network + filesystem + workloads) under every backend, checking
 * the paper's cross-cutting invariants — zero-cost flexibility, actual
 * isolation enforcement end-to-end, backend interchangeability, and
 * the exploration machinery over real measurements.
 */

#include <gtest/gtest.h>

#include "apps/deploy.hh"
#include "apps/http.hh"
#include "apps/iperf.hh"
#include "apps/minisql.hh"
#include "apps/redis.hh"
#include "explore/wayfinder.hh"

namespace flexos {
namespace {

std::string
redisConfig(const char *mech)
{
    return std::string(R"(
compartments:
- c1:
    mechanism: )") + mech + R"(
    default: True
- c2:
    mechanism: )" + mech + R"(
libraries:
- libredis: c1
- newlib: c1
- uksched: c1
- uktime: c1
- lwip: c2
)";
}

/** Run one Redis GET benchmark on a config; returns req/s. */
double
redisThroughput(const std::string &cfg, std::uint64_t requests = 300)
{
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    double out = runRedisGetBenchmark(dep.image(), dep.libc(),
                                      dep.clientStack(), requests, 1, 32)
                     .requestsPerSec;
    dep.stop();
    return out;
}

// -------------------------------------------------- flexibility claims

TEST(Integration, OnlyPayForWhatYouGet)
{
    // P4: FlexOS with the NONE backend performs as the rigid baseline —
    // the flexibility machinery itself adds nothing at runtime.
    double none1 = redisThroughput(R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libredis: all
- newlib: all
- uksched: all
- uktime: all
- lwip: all
)");
    double none2 = redisThroughput(R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libredis: all
- newlib: all
- uksched: all
- uktime: all
- lwip: all
)");
    EXPECT_DOUBLE_EQ(none1, none2); // deterministic simulation
}

TEST(Integration, MechanismStrengthOrdersThroughput)
{
    // Same compartmentalization, stronger mechanisms, lower throughput.
    double none = redisThroughput(redisConfig("none"));
    double mpk = redisThroughput(redisConfig("intel-mpk"));
    double ept = redisThroughput(redisConfig("vm-ept"));
    EXPECT_GT(none, mpk);
    EXPECT_GT(mpk, ept);
    // And the overheads stay in a sane band (not orders of magnitude).
    EXPECT_GT(ept, none / 10);
}

TEST(Integration, RedisWorksIdenticallyUnderEveryBackend)
{
    // Backend interchangeability (P2): the same workload produces the
    // same *answers* regardless of the isolation mechanism.
    for (const char *mech : {"none", "intel-mpk", "vm-ept", "cheri"}) {
        DeployOptions opts;
        opts.withFs = false;
        Deployment dep(redisConfig(mech), opts);
        dep.start();
        RedisServer server(dep.libc(), 6379);
        server.start();

        std::string reply;
        Thread *cli = dep.scheduler().spawn("cli", [&] {
            TcpSocket *s =
                dep.clientStack().connect(makeIp(10, 0, 0, 1), 6379);
            std::string wire =
                RespParser::command({"SET", "k", mech}) +
                RespParser::command({"INCR", "ctr"}) +
                RespParser::command({"GET", "k"});
            s->send(wire.data(), wire.size());
            char buf[256];
            while (reply.find(mech) == std::string::npos ||
                   reply.find(":1") == std::string::npos) {
                long n = s->recv(buf, sizeof(buf));
                if (n <= 0)
                    break;
                reply.append(buf, static_cast<std::size_t>(n));
            }
            s->close();
        });
        cli->freeRunning = true;
        ASSERT_TRUE(dep.scheduler().runUntil(
            [&] {
                return reply.find(mech) != std::string::npos &&
                       reply.find(":1") != std::string::npos;
            },
            50'000'000))
            << mech;
        server.stop();
        dep.stop();
    }
}

// ----------------------------------------------- end-to-end enforcement

TEST(Integration, CrossCompartmentSnoopingFaultsUnderMpkAndEpt)
{
    for (const char *mech : {"intel-mpk", "vm-ept"}) {
        DeployOptions opts;
        opts.withNet = false;
        opts.withFs = false;
        Deployment dep(redisConfig(mech), opts);

        bool faulted = false;
        bool done = false;
        dep.image().spawnIn("libredis", "attacker", [&] {
            int *lwipSecret = nullptr;
            dep.image().gate("lwip", "recv", [&] {
                lwipSecret = static_cast<int *>(
                    dep.image().heapOf("lwip").alloc(8));
                dep.image().store(lwipSecret, 7);
            });
            try {
                dep.image().load(lwipSecret);
            } catch (const ProtectionFault &) {
                faulted = true;
            }
            done = true;
        });
        dep.scheduler().runUntil([&] { return done; });
        EXPECT_TRUE(faulted) << mech;
        dep.image().shutdown();
    }
}

TEST(Integration, NoneBackendDoesNotFault)
{
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    Deployment dep(redisConfig("none"), opts);
    bool done = false;
    int seen = 0;
    dep.image().spawnIn("libredis", "reader", [&] {
        auto *p =
            static_cast<int *>(dep.image().heapOf("lwip").alloc(8));
        dep.image().store(p, 9);
        seen = dep.image().load(p);
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    EXPECT_EQ(seen, 9);
}

// ------------------------------------------------ SQLite across backends

TEST(Integration, SqliteMpk3ProducesSameRowsAsNone)
{
    auto runSql = [](const char *mech, int comps) {
        std::string cfg = "compartments:\n- c1:\n    mechanism: " +
                          std::string(mech) +
                          "\n    default: True\n";
        if (comps >= 2)
            cfg += "- c2:\n    mechanism: " + std::string(mech) + "\n";
        if (comps >= 3)
            cfg += "- c3:\n    mechanism: " + std::string(mech) + "\n";
        cfg += "libraries:\n- libsqlite: c1\n- newlib: c1\n"
               "- uksched: c1\n";
        cfg += std::string("- vfscore: ") + (comps >= 2 ? "c2" : "c1") +
               "\n";
        cfg += std::string("- uktime: ") + (comps >= 3 ? "c3" : "c1") +
               "\n";

        DeployOptions opts;
        opts.withNet = false;
        Deployment dep(cfg, opts);
        std::int64_t sum = -1;
        bool done = false;
        dep.image().spawnIn("libsqlite", "sql", [&] {
            minisql::Database db(dep.libc(), "/t.db");
            db.open();
            db.exec("CREATE TABLE t (v INTEGER)");
            for (int i = 1; i <= 40; ++i)
                db.exec("INSERT INTO t VALUES (" + std::to_string(i) +
                        ")");
            auto r = db.exec("SELECT * FROM t");
            sum = 0;
            for (const auto &row : r.rows)
                sum += std::get<std::int64_t>(row[0]);
            db.close();
            done = true;
        });
        dep.scheduler().runUntil([&] { return done; }, 50'000'000);
        return sum;
    };

    std::int64_t expect = 40 * 41 / 2;
    EXPECT_EQ(runSql("none", 1), expect);
    EXPECT_EQ(runSql("intel-mpk", 3), expect);
    EXPECT_EQ(runSql("vm-ept", 2), expect);
    EXPECT_EQ(runSql("sel4-ipc", 3), expect);
}

// ------------------------------------------------- hardening end-to-end

TEST(Integration, HardeningMonotonicallyCostsThroughput)
{
    // Poset axiom the exploration relies on: along a safety-increasing
    // path, measured performance does not increase.
    auto space = wayfinder::fig6Space();
    // Fixed partition C (lwip split), increasing hardening chain:
    // none -> app -> app+lwip -> app+lwip+sched -> all.
    std::vector<unsigned> masks = {0x0, 0x1, 0x9, 0xd, 0xf};
    double prev = 1e18;
    for (unsigned mask : masks) {
        ConfigPoint p;
        p.partition = {0, 0, 0, 1};
        p.hardening = {mask & 1u, (mask >> 1) & 1u, (mask >> 2) & 1u,
                       (mask >> 3) & 1u};
        double perf = wayfinder::measureRedis(p, 250);
        EXPECT_LT(perf, prev) << "mask " << mask;
        prev = perf;
    }
}

TEST(Integration, GateCountersMatchCommunicationPattern)
{
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(redisConfig("intel-mpk"), opts);
    dep.start();
    runRedisGetBenchmark(dep.image(), dep.libc(), dep.clientStack(),
                         100, 1, 16);
    // app->lwip crossings: at least one per request (recv), and the
    // reverse direction (returns are part of the same gate, so no
    // separate (1,0) record unless lwip calls out).
    auto &crossings = dep.image().gateCrossings();
    auto it = crossings.find({0, 1});
    ASSERT_NE(it, crossings.end());
    EXPECT_GE(it->second, 100u);
    dep.stop();
}

TEST(Integration, LinkerScriptCoversEveryCompartment)
{
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    Deployment dep(redisConfig("intel-mpk"), opts);
    std::string script = dep.image().linkerScript();
    EXPECT_NE(script.find(".text.c1"), std::string::npos);
    EXPECT_NE(script.find(".heap.c2"), std::string::npos);
    EXPECT_NE(script.find("shared"), std::string::npos);
    EXPECT_NE(script.find("pkey"), std::string::npos);
}

TEST(Integration, HttpAndRedisCoexistInOneImage)
{
    // Two applications, three compartments, one image.
    Deployment dep(R"(
compartments:
- apps:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: intel-mpk
- fs:
    mechanism: intel-mpk
libraries:
- libredis: apps
- libnginx: apps
- newlib: apps
- uksched: apps
- uktime: apps
- lwip: net
- vfscore: fs
)");
    dep.writeFile("/www/index.html", "coexistence");
    dep.start();
    RedisServer redis(dep.libc(), 6379);
    redis.start();
    HttpServer http(dep.libc(), "/www", 80);
    http.start();

    std::string redisReply, httpReply;
    Thread *cli = dep.scheduler().spawn("cli", [&] {
        TcpSocket *r =
            dep.clientStack().connect(makeIp(10, 0, 0, 1), 6379);
        std::string wire = RespParser::command({"PING"});
        r->send(wire.data(), wire.size());
        char buf[512];
        long n = r->recv(buf, sizeof(buf));
        redisReply.assign(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
        r->close();

        TcpSocket *h = dep.clientStack().connect(makeIp(10, 0, 0, 1), 80);
        std::string req = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        h->send(req.data(), req.size());
        while (httpReply.find("coexistence") == std::string::npos) {
            n = h->recv(buf, sizeof(buf));
            if (n <= 0)
                break;
            httpReply.append(buf, static_cast<std::size_t>(n));
        }
        h->close();
    });
    cli->freeRunning = true;
    ASSERT_TRUE(dep.scheduler().runUntil(
        [&] {
            return !redisReply.empty() &&
                   httpReply.find("coexistence") != std::string::npos;
        },
        100'000'000));
    EXPECT_NE(redisReply.find("PONG"), std::string::npos);
    EXPECT_NE(httpReply.find("200 OK"), std::string::npos);
    redis.stop();
    http.stop();
    dep.stop();
}

TEST(Integration, DeterministicAcrossRuns)
{
    // The whole stack is deterministic: identical configs produce
    // identical cycle counts — the property the exploration relies on
    // for comparable measurements.
    double a = redisThroughput(redisConfig("intel-mpk"), 150);
    double b = redisThroughput(redisConfig("intel-mpk"), 150);
    EXPECT_DOUBLE_EQ(a, b);
}

} // namespace
} // namespace flexos
