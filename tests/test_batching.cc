/**
 * @file
 * Vectored-crossing tests: `batch:` / `coalesce:` / `elide:` knob
 * parse + toText round-trip and wildcard layering, the batch: 1
 * vcycle-identity regression, exact chunk arithmetic (one gate plus
 * per-slot dispatch), per-logical-call throttle debiting, elision
 * streaks resetting on interleaved boundaries, RX integrity under the
 * deployment's batched drain, and the monotone product-space pruner
 * against brute force.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "apps/deploy.hh"
#include "apps/iperf.hh"
#include "core/image.hh"
#include "core/toolchain.hh"
#include "explore/poset.hh"
#include "explore/wayfinder.hh"

namespace flexos {
namespace {

struct BatchingFixture : ::testing::Test
{
    BatchingFixture()
        : scope(mach), sched(mach), reg(LibraryRegistry::standard()),
          tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

// --------------------------------------------------- config surface

TEST_F(BatchingFixture, BatchKnobsParseAndRoundTripThroughToText)
{
    const char *text = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: vm-ept
libraries:
- libredis: app
- lwip: net
boundaries:
- app -> net: {batch: 8, coalesce: 2000}
- net -> app: {elide: scrub}
)";
    SafetyConfig cfg = SafetyConfig::parse(text);
    ASSERT_EQ(cfg.boundaries.size(), 2u);
    EXPECT_EQ(cfg.boundaries[0].batch, 8u);
    EXPECT_EQ(cfg.boundaries[0].coalesce, 2000u);
    EXPECT_FALSE(cfg.boundaries[0].elide.has_value());
    EXPECT_EQ(cfg.boundaries[1].elide, GateElide::Scrub);

    SafetyConfig again = SafetyConfig::parse(cfg.toText());
    EXPECT_EQ(again.boundaries, cfg.boundaries);
    GateMatrix m = GateMatrix::build(again);
    EXPECT_EQ(m.at(0, 1).batch, 8u);
    EXPECT_EQ(m.at(0, 1).coalesce, 2000u);
    EXPECT_EQ(m.at(1, 0).elide, GateElide::Scrub);
    // Untouched cells keep the full-strength defaults.
    EXPECT_EQ(m.at(1, 0).batch, 1u);
    EXPECT_EQ(m.at(0, 1).elide, GateElide::None);
    // The policy name carries the tuning for ledgers and docs.
    EXPECT_NE(m.at(0, 1).name().find("batch(8)"), std::string::npos);
    EXPECT_NE(m.at(0, 1).name().find("coalesce(2000)"),
              std::string::npos);
    EXPECT_NE(m.at(1, 0).name().find("elide=scrub"), std::string::npos);
}

TEST_F(BatchingFixture, BatchKnobsLayerBySpecificity)
{
    // Wildcard batch applies image-wide; a callee-side rule overrides
    // the caller-side one; the exact pair wins without disturbing
    // fields it does not set.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
boundaries:
- '*' -> '*': {batch: 4}
- '*' -> b: {batch: 8, elide: validate}
- a -> b: {elide: both}
- a -> '*': {coalesce: 500}
)");
    GateMatrix m = GateMatrix::build(cfg);
    // a -> c: global batch, caller-side coalesce.
    EXPECT_EQ(m.at(0, 2).batch, 4u);
    EXPECT_EQ(m.at(0, 2).coalesce, 500u);
    EXPECT_EQ(m.at(0, 2).elide, GateElide::None);
    // a -> b: callee-side batch beats global; exact elide beats the
    // callee-side one; caller-side coalesce still layers in.
    EXPECT_EQ(m.at(0, 1).batch, 8u);
    EXPECT_EQ(m.at(0, 1).elide, GateElide::Both);
    EXPECT_EQ(m.at(0, 1).coalesce, 500u);
    // c -> b: callee-side only.
    EXPECT_EQ(m.at(2, 1).batch, 8u);
    EXPECT_EQ(m.at(2, 1).elide, GateElide::Validate);

    // Knob validation: batch: 0 is not a width, a denied edge has no
    // gate to tune, and equal-specificity disagreement is ambiguous.
    // lint-skip: intentionally invalid fragments below.
    auto parse = [](const std::string &rules) {
        return SafetyConfig::parse(std::string(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
libraries:
- libredis: a
boundaries:
)") + rules);
    };
    EXPECT_THROW(parse("- a -> b: {batch: 0}\n"), FatalError);
    EXPECT_THROW(parse("- a -> b: {deny: true, batch: 8}\n"),
                 FatalError);
    EXPECT_THROW(parse("- a -> b: {deny: true, elide: both}\n"),
                 FatalError);
    EXPECT_THROW(GateMatrix::build(parse("- a -> b: {batch: 4}\n"
                                         "- a -> b: {batch: 8}\n")),
                 FatalError);
}

// --------------------------------------------- vcycle identity + cost

const char *twoCompMpk = R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
libraries:
- libredis: a
- lwip: b
)";

/**
 * Wall cycles and counters after driving `calls` crossings a -> b
 * through gateBatch in chunks of `perCall` bodies, on a fresh
 * machine built from `text`.
 */
std::pair<Cycles, std::map<std::string, std::uint64_t>>
runBatched(LibraryRegistry &reg, const std::string &text,
           std::size_t calls, std::size_t perCall)
{
    Machine m;
    MachineScope scope(m);
    Scheduler sched(m);
    Toolchain tc(reg);
    SafetyConfig cfg = SafetyConfig::parse(text);
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    auto img = tc.build(m, sched, cfg);
    std::vector<std::function<void()>> bodies(perCall, [] {});
    img->spawnIn("libredis", "t", [&] {
        for (std::size_t i = 0; i < calls; i += perCall)
            img->gateBatch("lwip", "recv", bodies);
    });
    sched.run();
    img->shutdown();
    return {m.wallCycles(), m.counters()};
}

TEST_F(BatchingFixture, BatchOneIsVcycleIdenticalToSequentialGates)
{
    // The regression pin: `batch: 1` (and an unconfigured boundary
    // driven through the vectored API) must be bit-identical in
    // virtual time AND counters to the plain sequential gate.
    Machine m;
    {
        MachineScope scope(m);
        Scheduler sched(m);
        Toolchain tc2(reg);
        SafetyConfig cfg = SafetyConfig::parse(twoCompMpk);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        auto img = tc2.build(m, sched, cfg);
        img->spawnIn("libredis", "t", [&] {
            for (int i = 0; i < 64; ++i)
                img->gate("lwip", "recv", [] {});
        });
        sched.run();
        img->shutdown();
    }
    auto [plainCycles, plainCounters] = std::make_pair(m.wallCycles(),
                                                       m.counters());

    auto [defCycles, defCounters] =
        runBatched(reg, twoCompMpk, 64, 1);
    auto [oneCycles, oneCounters] = runBatched(
        reg,
        std::string(twoCompMpk) + "boundaries:\n- a -> b: {batch: 1}\n",
        64, 1);
    EXPECT_EQ(defCycles, plainCycles);
    EXPECT_EQ(defCounters, plainCounters);
    EXPECT_EQ(oneCycles, plainCycles);
    EXPECT_EQ(oneCounters, plainCounters);
    // No vectored-path artifacts exist at width 1.
    EXPECT_EQ(plainCounters.count("gate.batched"), 0u);
    EXPECT_EQ(plainCounters.count("gate.coalesced"), 0u);
}

TEST_F(BatchingFixture, BatchedChunkCostsOneGatePlusSlotDispatch)
{
    // A full chunk of k calls costs exactly one gate round trip plus
    // (k - 1) per-slot dispatches — the arithmetic behind fig11b's
    // (462 + 7 x 6) / 8 = 63 EPT step-change, here on the MPK DSS
    // boundary where nothing blocks.
    auto img = buildFrom(std::string(twoCompMpk) +
                         "boundaries:\n- a -> b: {batch: 8}\n");
    std::vector<std::function<void()>> one(1, [] {});
    std::vector<std::function<void()>> eight(8, [] {});
    Cycles gateCost = 0, chunkCost = 0;
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        img->gateBatch("lwip", "recv", one); // warm the sim stack
        Cycles t0 = mach.cycles();
        img->gateBatch("lwip", "recv", one);
        gateCost = mach.cycles() - t0;
        t0 = mach.cycles();
        img->gateBatch("lwip", "recv", eight);
        chunkCost = mach.cycles() - t0;
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(gateCost, static_cast<Cycles>(mach.timing.mpkDssGate));
    EXPECT_EQ(chunkCost, gateCost + 7 * mach.timing.batchSlot);
    EXPECT_EQ(mach.counter("gate.batched"), 1u);
    EXPECT_EQ(mach.counter("gate.batchedCalls"), 8u);
    img->shutdown();
}

// ------------------------------------------- throttle per logical call

TEST_F(BatchingFixture, ThrottleDebitsPerLogicalCallNotPerDoorbell)
{
    // rate: 4 with batch: 8 — a vectored chunk of four debits all four
    // tokens even though it rings one doorbell, so the next logical
    // call overflows. Batching must not launder rate limits.
    auto img = buildFrom(std::string(twoCompMpk) + R"(boundaries:
- a -> b: {batch: 8, rate: 4, window: 10000000, overflow: fail}
)");
    int executed = 0;
    bool throttled = false;
    bool done = false;
    std::vector<std::function<void()>> four(4, [&] { ++executed; });
    img->spawnIn("libredis", "t", [&] {
        img->gateBatch("lwip", "recv", four);
        try {
            img->gateBatch("lwip", "recv", four);
        } catch (const ThrottledCrossing &) {
            throttled = true;
        }
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    // First chunk: one crossing, four token debits, four bodies run.
    // Second chunk: rejected at enforcement, before any body runs.
    EXPECT_EQ(executed, 4);
    EXPECT_TRUE(throttled);
    EXPECT_EQ(mach.counter("gate.batched"), 1u);
    EXPECT_EQ(mach.counter("gate.batchedCalls"), 4u);
    EXPECT_EQ(mach.counter("gate.throttled"), 1u);
    img->shutdown();
}

// --------------------------------------------------- elision streaks

TEST_F(BatchingFixture, ElisionStreakResetsOnInterleavedBoundary)
{
    // elide: both sheds the validate + scrub legs only on consecutive
    // same-boundary calls; an intervening a -> c crossing breaks the
    // streak so the next a -> b call pays both legs in full.
    auto img = buildFrom(R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libredis: a
- lwip: b
- uksched: c
boundaries:
- a -> b: {validate: true, elide: both}
)");
    Cycles elidedCost = 0, resetCost = 0;
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [] {}); // streak opener, full price
        Cycles t0 = mach.cycles();
        img->gate("lwip", "recv", [] {}); // streak: both legs elided
        elidedCost = mach.cycles() - t0;
        img->gate("uksched", "yield", [] {}); // breaks the streak
        t0 = mach.cycles();
        img->gate("lwip", "recv", [] {}); // full price again
        resetCost = mach.cycles() - t0;
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    // Exactly one elision of each leg happened, and the post-reset
    // crossing is dearer by precisely those two charges.
    EXPECT_EQ(mach.counter("gate.elided.validate"), 1u);
    EXPECT_EQ(mach.counter("gate.elided.scrub"), 1u);
    EXPECT_EQ(mach.counter("gate.validate"), 2u);
    EXPECT_EQ(resetCost, elidedCost + mach.timing.entryValidate +
                             mach.timing.registerSaveZero);
    img->shutdown();
}

// ------------------------------------- batched RX drain end to end

TEST(BatchedRxDrain, DeploymentDeliversAllBytesInOrder)
{
    // lwip in its own compartment with a batched RX boundary: the
    // driver-side poller fetches bursts and crosses once per burst.
    // TCP is the ordering oracle — reordered or dropped frames inside
    // a burst could not yield the exact byte count across four flows.
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: intel-mpk
libraries:
- libiperf: app
- newlib: app
- uksched: app
- lwip: net
boundaries:
- app -> net: {batch: 8}
)");
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res = runIperfMulti(dep.image(), dep.libc(),
                                    dep.clientStack(), 32 * 1024, 4096,
                                    /*flows=*/4);
    dep.stop();
    EXPECT_EQ(res.bytes, 4u * 32 * 1024);
    // The vectored path actually carried traffic (bursts formed).
    Machine &m = dep.machine();
    EXPECT_GE(m.counter("gate.batched"), 1u);
    EXPECT_GT(m.counter("gate.batchedCalls"),
              m.counter("gate.batched"));
}

// ------------------------------------------------ poset + pruning

TEST(BatchingPoset, ElisionOrdersPointsBatchWidthDoesNot)
{
    ConfigPoint base;
    base.partition = {0, 0, 0, 1};
    base.hardening.assign(4, 0);

    ConfigPoint elided = base;
    elided.elided = 3; // validate + scrub
    EXPECT_EQ(compareSafety(elided, base), SafetyOrder::Less);
    EXPECT_EQ(compareSafety(base, elided), SafetyOrder::Greater);

    ConfigPoint scrubOnly = base;
    scrubOnly.elided = 2;
    EXPECT_EQ(compareSafety(scrubOnly, elided), SafetyOrder::Greater);
    ConfigPoint validateOnly = base;
    validateOnly.elided = 1;
    EXPECT_EQ(compareSafety(validateOnly, scrubOnly),
              SafetyOrder::Incomparable);

    // Batch width is performance-only, exactly like cores.
    ConfigPoint batched = base;
    batched.gateBatch = 8;
    EXPECT_EQ(compareSafety(batched, base), SafetyOrder::Equal);

    // And the sweep space materializes valid configs end to end.
    for (const ConfigPoint &p : wayfinder::batchingSpace()) {
        SafetyConfig c = wayfinder::toSafetyConfig(p, "libredis");
        if (p.gateBatch > 1 || p.elided != 0) {
            ASSERT_FALSE(c.boundaries.empty());
            EXPECT_EQ(c.boundaries.back().from, "*");
        }
        // Round-trips through text like any hand-written config.
        SafetyConfig again = SafetyConfig::parse(c.toText());
        EXPECT_EQ(again.boundaries, c.boundaries);
    }
}

TEST(PrunedProduct, MatchesBruteForceAndSkipsDominatedFailures)
{
    // Two safety axes (chains of 3 and 2) and one perf-only axis of 2:
    // perf decreases monotonically in the safety axes and is flat in
    // the perf axis. Budget 6.5 rejects x=2 vectors; the pruner must
    // accept exactly the brute-force set and never evaluate a vector
    // dominating a failed one — but a failure must NOT prune across
    // the perf-only axis.
    std::vector<wayfinder::ProductDimension> dims = {
        {"x", 3, [](std::size_t a, std::size_t b) { return a <= b; }},
        {"y", 2, [](std::size_t a, std::size_t b) { return a <= b; }},
        {"perf", 2,
         [](std::size_t a, std::size_t b) { return a == b; }},
    };
    auto perf = [](const std::vector<std::size_t> &v) {
        return 10.0 - 2.0 * static_cast<double>(v[0]) -
               static_cast<double>(v[1]);
    };
    std::set<std::vector<std::size_t>> evaluated, accepted;
    std::size_t evals = wayfinder::explorePrunedProduct(
        dims,
        [&](const std::vector<std::size_t> &v) {
            evaluated.insert(v);
            return perf(v);
        },
        6.5,
        [&](const std::vector<std::size_t> &v, double p) {
            EXPECT_EQ(p, perf(v));
            accepted.insert(v);
        });

    // Brute force: accepted iff 10 - 2x - y >= 6.5.
    std::set<std::vector<std::size_t>> expect;
    for (std::size_t x = 0; x < 3; ++x)
        for (std::size_t y = 0; y < 2; ++y)
            for (std::size_t p = 0; p < 2; ++p)
                if (perf({x, y, p}) >= 6.5)
                    expect.insert({x, y, p});
    EXPECT_EQ(accepted, expect);
    EXPECT_EQ(evals, evaluated.size());

    // The first x=2 vector of each perf slice fails (perf 6 < 6.5)
    // and prunes the (2,1,p) vector of the SAME perf index; vectors
    // in the other perf slice are incomparable under the equality
    // order and must still be evaluated in their own right.
    EXPECT_TRUE(evaluated.count({2, 0, 0}));
    EXPECT_TRUE(evaluated.count({2, 0, 1}));
    EXPECT_FALSE(evaluated.count({2, 1, 0}));
    EXPECT_FALSE(evaluated.count({2, 1, 1}));
    EXPECT_LT(evals, 12u);
}

} // namespace
} // namespace flexos
