#!/usr/bin/env bash
# Markdown link check for README.md and docs/: every relative link
# must name a file that exists (anchors are stripped; http(s) links
# are skipped — CI has no network guarantee). Run from anywhere:
#   tools/check_links.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fail=0
checked=0

for md in "$root"/README.md "$root"/docs/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # All (target) parts of [text](target) links, one per line.
    targets=$(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//')
    while IFS= read -r t; do
        [ -n "$t" ] || continue
        case "$t" in
            http://*|https://*|mailto:*) continue ;;
        esac
        path="${t%%#*}"            # strip anchor
        [ -n "$path" ] || continue # pure in-page anchor
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
            echo "check-links: $md: broken link '$t'" >&2
            fail=1
        fi
    done <<EOF
$targets
EOF
done

echo "check-links: $checked relative link(s) checked"
exit $fail
