/**
 * @file
 * Boundary auditor CLI: runs the flexos::analysis passes (call-graph,
 * shared-data escape, policy-safety) over every safety configuration
 * in the given files and renders the findings.
 *
 * Inputs are either C++ sources (`.cc`, `.cpp`, `.hh`, `.hpp`, `.h`)
 * — every embedded raw-string config is audited, with the same
 * extraction and `lint-skip` rules as `tools/config_lint` — or plain
 * config files, audited as one config.
 *
 * Usage:
 *   boundary_audit [--json] [--src-root DIR] [--no-escape]
 *                  [--exit-zero] <file>...
 *
 *   --json       emit a JSON array of per-config reports instead of
 *                the human-readable text format
 *   --src-root   repository root the registry's source file lists
 *                resolve against (default: current directory)
 *   --no-escape  skip the shared-data escape scan (no source access)
 *   --exit-zero  report findings but exit 0 anyway (golden-diff CI
 *                runs compare output, not exit status)
 *
 * Exit status: 2 on usage or I/O errors, 1 when any config fails to
 * parse/validate or any error-severity finding fires, 0 otherwise.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/audit.hh"
#include "analysis/extract.hh"
#include "core/toolchain.hh"

using namespace flexos;

namespace {

bool
isCppSource(const std::string &path)
{
    static const char *exts[] = {".cc", ".cpp", ".cxx", ".hh", ".hpp",
                                 ".h"};
    for (const char *ext : exts) {
        std::size_t n = std::strlen(ext);
        if (path.size() > n &&
            path.compare(path.size() - n, n, ext) == 0)
            return true;
    }
    return false;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--json] [--src-root DIR] [--no-escape] "
                 "[--exit-zero] <file>...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false, exitZero = false;
    analysis::AuditOptions opts;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--no-escape") {
            opts.escape = false;
        } else if (arg == "--exit-zero") {
            exitZero = true;
        } else if (arg == "--src-root") {
            if (++i >= argc)
                return usage(argv[0]);
            opts.srcRoot = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(std::move(arg));
        }
    }
    if (files.empty())
        return usage(argv[0]);

    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);

    std::vector<analysis::AuditReport> reports;
    int failed = 0;

    auto audit = [&](const std::string &label, const std::string &text) {
        try {
            SafetyConfig cfg = SafetyConfig::parse(text);
            tc.validate(cfg);
            analysis::AuditReport r = analysis::runAudit(cfg, reg, opts);
            r.label = label;
            reports.push_back(std::move(r));
        } catch (const std::exception &e) {
            ++failed;
            std::fprintf(stderr, "boundary-audit: %s: %s\n",
                         label.c_str(), e.what());
        }
    };

    for (const std::string &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "boundary-audit: cannot read %s\n",
                         file.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        if (isCppSource(file)) {
            for (const analysis::ConfigBlock &b :
                 analysis::extractEmbeddedConfigs(ss.str()))
                audit(file + ":" + std::to_string(b.line), b.text);
        } else {
            audit(file, ss.str());
        }
    }

    std::size_t errors = 0, warnings = 0;
    for (const analysis::AuditReport &r : reports) {
        errors += r.countOf(analysis::Severity::Error);
        warnings += r.countOf(analysis::Severity::Warning);
    }

    if (json) {
        std::printf("[");
        for (std::size_t i = 0; i < reports.size(); ++i)
            std::printf("%s%s", i ? ",\n" : "\n",
                        reports[i].toJson().c_str());
        std::printf("\n]\n");
    } else {
        for (const analysis::AuditReport &r : reports)
            std::printf("%s\n", r.toText().c_str());
        std::printf("boundary-audit: %zu config(s) audited, %d failed, "
                    "%zu error(s), %zu warning(s)\n",
                    reports.size(), failed, errors, warnings);
    }

    if (exitZero)
        return 0;
    return (failed || errors) ? 1 : 0;
}
