#!/bin/sh
# Regenerate tests/golden/boundary_audit.txt — the golden report the
# `boundary_audit_golden` CTest (and the CI static-analysis job) diffs
# against. Run from anywhere after building:
#   tools/update_boundary_audit_golden.sh [build-dir]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$root/build"}

if [ ! -x "$build/boundary_audit" ]; then
    echo "update-golden: $build/boundary_audit not built" >&2
    exit 2
fi

cd "$root"
# Same input set and order as cmake/CheckBoundaryAudit.cmake: every
# example and test source, sorted, repo-relative.
inputs=$(ls examples/*.cpp tests/*.cc | LC_ALL=C sort)
# shellcheck disable=SC2086
"$build/boundary_audit" --exit-zero --src-root "$root" $inputs \
    > tests/golden/boundary_audit.txt
echo "update-golden: wrote tests/golden/boundary_audit.txt"
