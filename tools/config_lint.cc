/**
 * @file
 * Config lint: extracts every embedded safety configuration from the
 * given C++ sources (raw-string literals containing both a
 * `compartments:` and a `libraries:` section) and runs it through
 * SafetyConfig::parse + Toolchain::validate against the standard
 * library registry — the CI smoke step that keeps every config in
 * examples/ and tests/ loadable as the config surface evolves.
 *
 * Blocks that are intentionally malformed (rejection tests) opt out
 * with a `lint-skip` marker inside or immediately before the literal.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/toolchain.hh"

using namespace flexos;

namespace {

struct Block
{
    std::string text;
    std::size_t line = 0;
};

/** All R"( ... )" raw-string literals in a source file. */
std::vector<Block>
rawStrings(const std::string &src)
{
    std::vector<Block> out;
    std::size_t pos = 0;
    while ((pos = src.find("R\"(", pos)) != std::string::npos) {
        std::size_t start = pos + 3;
        std::size_t end = src.find(")\"", start);
        if (end == std::string::npos)
            break;
        Block b;
        b.text = src.substr(start, end - start);
        b.line = 1 + std::count(src.begin(),
                                src.begin() + static_cast<long>(pos),
                                '\n');
        // A lint-skip marker just before the literal opts it out too.
        std::size_t ctx = pos > 160 ? pos - 160 : 0;
        if (src.substr(ctx, pos - ctx).find("lint-skip") !=
            std::string::npos)
            b.text += "\n# lint-skip\n";
        out.push_back(std::move(b));
        pos = end + 2;
    }
    return out;
}

bool
looksLikeConfig(const std::string &s)
{
    return s.find("compartments:") != std::string::npos &&
           s.find("libraries:") != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);

    int checked = 0, failed = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in) {
            std::fprintf(stderr, "config-lint: cannot read %s\n",
                         argv[i]);
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        for (const Block &b : rawStrings(ss.str())) {
            if (!looksLikeConfig(b.text) ||
                b.text.find("lint-skip") != std::string::npos)
                continue;
            ++checked;
            try {
                SafetyConfig cfg = SafetyConfig::parse(b.text);
                tc.validate(cfg);
            } catch (const std::exception &e) {
                ++failed;
                std::fprintf(stderr, "config-lint: %s:%zu: %s\n",
                             argv[i], b.line, e.what());
            }
        }
    }
    std::printf("config-lint: %d config(s) checked, %d failed\n",
                checked, failed);
    return failed ? 1 : 0;
}
