/**
 * @file
 * Config lint: extracts every embedded safety configuration from the
 * given C++ sources (raw-string literals containing both a
 * `compartments:` and a `libraries:` section) and runs it through
 * SafetyConfig::parse + Toolchain::validate against the standard
 * library registry — the CI smoke step that keeps every config in
 * examples/ and tests/ loadable as the config surface evolves.
 *
 * Blocks that are intentionally malformed (rejection tests) opt out
 * with a `lint-skip` marker inside or immediately before the literal.
 *
 * On top of parse + validate, the lint runs the flexos::analysis
 * call-graph pass and reports its warning-or-worse findings: denied
 * static-dependency edges (the image build will reject the config),
 * compartments the deny ruleset severs every transitive path to
 * (including multi-hop forwarding chains), and compartments denied
 * from everywhere. The deeper per-boundary policy and shared-data
 * audits live in `tools/boundary_audit`.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/callgraph.hh"
#include "analysis/extract.hh"
#include "core/toolchain.hh"

using namespace flexos;

namespace {

/**
 * Print the call-graph pass findings of one config in the classic
 * lint format.
 *
 * @return number of warning-or-worse findings.
 */
int
lintCallGraph(const char *file, std::size_t line, const SafetyConfig &cfg,
              const LibraryRegistry &reg)
{
    analysis::AuditReport report;
    analysis::CompartmentGraph graph =
        analysis::buildCompartmentGraph(cfg, reg);
    analysis::callGraphPass(graph, report);
    report.normalize();

    int warnings = 0;
    for (const analysis::Finding &f : report.findings) {
        if (f.severity == analysis::Severity::Note)
            continue;
        ++warnings;
        std::fprintf(stderr, "config-lint: %s:%zu: warning: %s\n", file,
                     line, f.message.c_str());
    }
    return warnings;
}

} // namespace

int
main(int argc, char **argv)
{
    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);

    int checked = 0, failed = 0, warned = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in) {
            std::fprintf(stderr, "config-lint: cannot read %s\n",
                         argv[i]);
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        for (const analysis::ConfigBlock &b :
             analysis::extractEmbeddedConfigs(ss.str())) {
            ++checked;
            try {
                SafetyConfig cfg = SafetyConfig::parse(b.text);
                tc.validate(cfg);
                warned += lintCallGraph(argv[i], b.line, cfg, reg);
            } catch (const std::exception &e) {
                ++failed;
                std::fprintf(stderr, "config-lint: %s:%zu: %s\n",
                             argv[i], b.line, e.what());
            }
        }
    }
    std::printf("config-lint: %d config(s) checked, %d failed, "
                "%d warning(s)\n",
                checked, failed, warned);
    return failed ? 1 : 0;
}
