/**
 * @file
 * Config lint: extracts every embedded safety configuration from the
 * given C++ sources (raw-string literals containing both a
 * `compartments:` and a `libraries:` section) and runs it through
 * SafetyConfig::parse + Toolchain::validate against the standard
 * library registry — the CI smoke step that keeps every config in
 * examples/ and tests/ loadable as the config surface evolves.
 *
 * Blocks that are intentionally malformed (rejection tests) opt out
 * with a `lint-skip` marker inside or immediately before the literal.
 *
 * On top of parse + validate, the lint runs a reachability pass over
 * `deny:` boundary rules: a denied edge that is a compartment's only
 * path to one of its static dependencies (the image build will reject
 * it), and a compartment denied from every other compartment (legal
 * but suspicious — nothing can ever call into it), are reported as
 * warnings.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/toolchain.hh"

using namespace flexos;

namespace {

struct Block
{
    std::string text;
    std::size_t line = 0;
};

/** All R"( ... )" raw-string literals in a source file. */
std::vector<Block>
rawStrings(const std::string &src)
{
    std::vector<Block> out;
    std::size_t pos = 0;
    while ((pos = src.find("R\"(", pos)) != std::string::npos) {
        std::size_t start = pos + 3;
        std::size_t end = src.find(")\"", start);
        if (end == std::string::npos)
            break;
        Block b;
        b.text = src.substr(start, end - start);
        b.line = 1 + std::count(src.begin(),
                                src.begin() + static_cast<long>(pos),
                                '\n');
        // A lint-skip marker just before the literal opts it out too.
        std::size_t ctx = pos > 160 ? pos - 160 : 0;
        if (src.substr(ctx, pos - ctx).find("lint-skip") !=
            std::string::npos)
            b.text += "\n# lint-skip\n";
        out.push_back(std::move(b));
        pos = end + 2;
    }
    return out;
}

bool
looksLikeConfig(const std::string &s)
{
    return s.find("compartments:") != std::string::npos &&
           s.find("libraries:") != std::string::npos;
}

/**
 * Least-privilege reachability lint. The direct call is a library's
 * *only* path to a dependency (there is no transitive routing through
 * other compartments), so a deny rule covering a statically needed
 * edge starves the caller; flag it before the image build rejects it.
 * Also flag compartments denied from everywhere (dead code unless
 * they spawn their own threads).
 *
 * @return number of warnings printed.
 */
int
lintDenyReachability(const char *file, std::size_t line,
                     const SafetyConfig &cfg, const LibraryRegistry &reg)
{
    bool anyDeny = false;
    for (const BoundaryRule &r : cfg.boundaries)
        anyDeny = anyDeny || (r.deny && *r.deny);
    if (!anyDeny)
        return 0;

    int warnings = 0;
    GateMatrix m = GateMatrix::build(cfg);

    // 1) Denied static-dependency edges: the compartment's only path
    // to the callee library is the direct gate the rule forbids.
    for (const auto &[lib, compName] : cfg.libraries) {
        int from = cfg.compartmentIndex(compName);
        if (!reg.contains(lib))
            continue;
        for (const std::string &callee : reg.get(lib).callees) {
            int to = -1;
            for (const auto &[other, oc] : cfg.libraries)
                if (other == callee)
                    to = cfg.compartmentIndex(oc);
            if (to < 0 || to == from)
                continue;
            // Callers on a TCB-replicating mechanism keep TCB
            // libraries local and never cross this edge — ask the
            // backend itself (the same predicate the image build
            // uses) rather than hardcoding which mechanisms do.
            Mechanism callerMech =
                cfg.compartments[static_cast<std::size_t>(from)]
                    .mechanism;
            if (reg.get(callee).tcb &&
                makeBackend(callerMech)->replicatesTcb())
                continue;
            if (m.at(from, to).deny) {
                std::fprintf(stderr,
                             "config-lint: %s:%zu: warning: boundary "
                             "%s -> %s is denied but it is %s's only "
                             "path to its dependency %s (image build "
                             "will reject this config)\n",
                             file, line, compName.c_str(),
                             cfg.compartments[static_cast<std::size_t>(
                                                  to)]
                                 .name.c_str(),
                             lib.c_str(), callee.c_str());
                ++warnings;
            }
        }
    }

    // 2) Compartments unreachable from every other compartment. The
    // default compartment is exempt: threads start there, so denying
    // all inbound edges is the normal least-privilege posture.
    std::size_t n = cfg.compartments.size();
    for (std::size_t t = 0; t < n; ++t) {
        if (cfg.compartments[t].isDefault)
            continue;
        bool reachable = n == 1;
        for (std::size_t f = 0; f < n && !reachable; ++f)
            reachable = f != t && !m.at(static_cast<int>(f),
                                        static_cast<int>(t))
                                       .deny;
        if (!reachable) {
            std::fprintf(stderr,
                         "config-lint: %s:%zu: warning: compartment "
                         "'%s' is denied from every other compartment "
                         "— nothing can ever gate into it\n",
                         file, line,
                         cfg.compartments[t].name.c_str());
            ++warnings;
        }
    }
    return warnings;
}

} // namespace

int
main(int argc, char **argv)
{
    LibraryRegistry reg = LibraryRegistry::standard();
    Toolchain tc(reg);

    int checked = 0, failed = 0, warned = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in) {
            std::fprintf(stderr, "config-lint: cannot read %s\n",
                         argv[i]);
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        for (const Block &b : rawStrings(ss.str())) {
            if (!looksLikeConfig(b.text) ||
                b.text.find("lint-skip") != std::string::npos)
                continue;
            ++checked;
            try {
                SafetyConfig cfg = SafetyConfig::parse(b.text);
                tc.validate(cfg);
                warned +=
                    lintDenyReachability(argv[i], b.line, cfg, reg);
            } catch (const std::exception &e) {
                ++failed;
                std::fprintf(stderr, "config-lint: %s:%zu: %s\n",
                             argv[i], b.line, e.what());
            }
        }
    }
    std::printf("config-lint: %d config(s) checked, %d failed, "
                "%d warning(s)\n",
                checked, failed, warned);
    return failed ? 1 : 0;
}
