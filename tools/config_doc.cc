/**
 * @file
 * Config-reference generator: prints docs/config-reference.md to
 * stdout (or writes it to the file named by argv[1]) from the same
 * key tables SafetyConfig::parse dispatches on — the documentation
 * cannot name a key the parser does not accept, or miss one it does.
 * CI regenerates the file and fails on diff so the reference cannot
 * drift from the parser.
 *
 * Usage:
 *     config_doc                 # markdown on stdout
 *     config_doc <output-file>   # write (for the CI freshness check)
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/config.hh"

int
main(int argc, char **argv)
{
    std::string md = flexos::configReferenceMarkdown();
    if (argc < 2) {
        std::cout << md;
        return 0;
    }
    std::ofstream out(argv[1]);
    if (!out) {
        std::fprintf(stderr, "config-doc: cannot write %s\n", argv[1]);
        return 2;
    }
    out << md;
    return 0;
}
